//! RC retransmission on a lossy fabric: go-back-N recovery, replay
//! ordering, duplicate suppression, retry exhaustion, and the
//! differential between go-back-N and selective repeat under an
//! identical deterministic loss schedule.
//!
//! The fabric is a two-node dumbbell with a slow bottleneck and a buffer
//! of a few frames, so a burst of multi-fragment messages tail-drops
//! heavily; with retransmission armed every message must still complete,
//! in order, with exact payload bytes.

use cord_hw::{system_l, GuestMem, MemRegion};
use cord_net::{NetConfig, Topology};
use cord_nic::{
    build_cluster_with, Access, Cq, CqeStatus, Nic, QpNum, QpState, RecvWqe, RetxConfig, RetxMode,
    SendWqe, Sge, Transport, WrId,
};
use cord_sim::{Sim, SimDuration, Trace};

struct Endpoint {
    nic: Nic,
    mem: GuestMem,
    send_cq: Cq,
    recv_cq: Cq,
    qpn: QpNum,
}

/// Two RC endpoints across a lossy dumbbell (node 0 -> node 1 crosses the
/// bottleneck), both with retransmission armed.
fn lossy_rc_pair(sim: &Sim, bottleneck_gbps: f64, buffer_bytes: usize) -> (Endpoint, Endpoint) {
    let mut cfg = NetConfig::for_topology(Topology::Dumbbell { bottleneck_gbps });
    cfg.buffer_bytes = buffer_bytes;
    cfg.ecn.enabled = false;
    let nics = build_cluster_with(sim, &system_l(), cfg, Trace::disabled());
    let mk = |nic: &Nic| {
        let send_cq = nic.create_cq(1024);
        let recv_cq = nic.create_cq(1024);
        let qpn = nic.create_qp(Transport::Rc, send_cq.clone(), recv_cq.clone());
        Endpoint {
            nic: nic.clone(),
            mem: GuestMem::new(),
            send_cq,
            recv_cq,
            qpn,
        }
    };
    let a = mk(&nics[0]);
    let b = mk(&nics[1]);
    a.nic.connect(a.qpn, Some((1, b.qpn))).unwrap();
    b.nic.connect(b.qpn, Some((0, a.qpn))).unwrap();
    a.nic
        .set_rc_retx(a.qpn, Some(RetxConfig::default()))
        .unwrap();
    b.nic
        .set_rc_retx(b.qpn, Some(RetxConfig::default()))
        .unwrap();
    (a, b)
}

fn pattern(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|k| (k * 13 + i * 41 + 5) as u8).collect()
}

async fn wait_cqe(cq: &Cq) -> cord_nic::Cqe {
    loop {
        if let Some(c) = cq.poll_one() {
            return c;
        }
        cq.wait_push().await;
    }
}

#[test]
fn go_back_n_recovers_a_lossy_burst_in_order() {
    let sim = Sim::new();
    // 10 Gb/s bottleneck, 25 KB buffer: a burst of 4-fragment messages
    // from a 100 Gb/s host overwhelms it and tail-drops. The buffer holds
    // at least one whole message (~16.6 KB on the wire) — the progress
    // condition for message-granularity go-back-N: each replay round must
    // be able to land the oldest message in full, or recovery livelocks
    // into retry exhaustion.
    let (a, b) = lossy_rc_pair(&sim, 10.0, 25_000);
    const MSGS: usize = 12;
    const LEN: usize = 16 * 1024; // 4 fragments at the 4096 B MTU

    let mut dsts: Vec<MemRegion> = Vec::new();
    for i in 0..MSGS {
        let src = a.mem.alloc_from(&pattern(i, LEN));
        let dst = b.mem.alloc(LEN, 0);
        let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
        let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(100 + i as u64),
                    Sge {
                        addr: dst.addr,
                        len: dst.len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(i as u64),
                    Sge {
                        addr: src.addr,
                        len: LEN,
                        lkey: mra.lkey,
                    },
                ),
                false,
            )
            .unwrap();
        dsts.push(dst);
    }

    let (recv_order, send_order) = sim.block_on({
        let (rcq, scq) = (b.recv_cq.clone(), a.send_cq.clone());
        async move {
            let mut recv_order = Vec::new();
            let mut send_order = Vec::new();
            for _ in 0..MSGS {
                let c = wait_cqe(&rcq).await;
                assert_eq!(c.status, CqeStatus::Success);
                assert_eq!(c.byte_len, LEN);
                recv_order.push(c.wr_id.0);
            }
            for _ in 0..MSGS {
                let c = wait_cqe(&scq).await;
                assert_eq!(c.status, CqeStatus::Success);
                send_order.push(c.wr_id.0);
            }
            (recv_order, send_order)
        }
    });

    // Replay preserved order end to end: receive completions in post
    // order, ACK completions in post order.
    assert_eq!(recv_order, (100..100 + MSGS as u64).collect::<Vec<_>>());
    assert_eq!(send_order, (0..MSGS as u64).collect::<Vec<_>>());
    // Loss actually happened and go-back-N actually replayed.
    let net = a.nic.network();
    assert!(net.total_drops() > 0, "burst must tail-drop");
    assert!(a.nic.retx_stats().0 > 0, "sender must have replayed");
    assert_eq!(a.nic.retx_stats().1, 0, "no retry exhaustion");
    // Every byte of every message landed exactly once, despite duplicate
    // fragments from replays.
    for (i, dst) in dsts.iter().enumerate() {
        let got = b.mem.read(dst.addr, LEN).unwrap();
        assert_eq!(&got[..], &pattern(i, LEN)[..], "message {i} corrupted");
    }
}

#[test]
fn lossless_runs_never_replay_and_timers_cancel_cleanly() {
    let sim = Sim::new();
    // Big buffer: nothing drops, so the armed retransmit timers must all
    // be tombstone-cancelled by ACKs without ever firing a replay.
    let (a, b) = lossy_rc_pair(&sim, 25.0, 16 << 20);
    const MSGS: usize = 8;
    const LEN: usize = 8 * 1024;
    for i in 0..MSGS {
        let src = a.mem.alloc_from(&pattern(i, LEN));
        let dst = b.mem.alloc(LEN, 0);
        let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
        let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(i as u64),
                    Sge {
                        addr: dst.addr,
                        len: dst.len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(i as u64),
                    Sge {
                        addr: src.addr,
                        len: LEN,
                        lkey: mra.lkey,
                    },
                ),
                false,
            )
            .unwrap();
    }
    sim.block_on({
        let scq = a.send_cq.clone();
        async move {
            for _ in 0..MSGS {
                assert_eq!(wait_cqe(&scq).await.status, CqeStatus::Success);
            }
        }
    });
    assert_eq!(a.nic.network().total_drops(), 0);
    assert_eq!(a.nic.retx_stats(), (0, 0), "no loss, no replays");
    // The sim drains completely: no retransmit timer is left pending
    // (cancelled handles are tombstones, not live timers).
    sim.run();
}

#[test]
fn retry_exhaustion_surfaces_an_error_completion_and_flushes() {
    let sim = Sim::new();
    // Buffer smaller than one frame: the bottleneck drops everything, so
    // no ACK can ever arrive and retries must exhaust.
    let (a, b) = lossy_rc_pair(&sim, 10.0, 100);
    let cfg = RetxConfig {
        timeout: SimDuration::from_us(50),
        max_retries: 3,
        ..RetxConfig::default()
    };
    a.nic.set_rc_retx(a.qpn, Some(cfg)).unwrap();
    let src = a.mem.alloc_from(&pattern(0, 4096));
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(7),
                Sge {
                    addr: src.addr,
                    len: 4096,
                    lkey: mra.lkey,
                },
            ),
            false,
        )
        .unwrap();
    let cqe = sim.block_on({
        let scq = a.send_cq.clone();
        async move { wait_cqe(&scq).await }
    });
    assert_eq!(cqe.wr_id, WrId(7));
    assert_eq!(cqe.status, CqeStatus::RetryExcErr);
    assert_eq!(a.nic.qp_state(a.qpn).unwrap(), QpState::Error);
    assert_eq!(a.nic.retx_stats().1, 1, "exhaustion counted");
    // 3 replays queued (one per allowed timeout) before the 4th errored.
    assert_eq!(a.nic.retx_stats().0, 3);
    drop(b);
}

#[test]
fn lossy_recovery_is_deterministic() {
    fn run() -> (u64, u64, u64) {
        let sim = Sim::new();
        let (a, b) = lossy_rc_pair(&sim, 10.0, 25_000);
        const MSGS: usize = 6;
        const LEN: usize = 16 * 1024;
        for i in 0..MSGS {
            let src = a.mem.alloc_from(&pattern(i, LEN));
            let dst = b.mem.alloc(LEN, 0);
            let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
            let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
            b.nic
                .post_recv(
                    b.qpn,
                    RecvWqe::new(
                        WrId(i as u64),
                        Sge {
                            addr: dst.addr,
                            len: dst.len,
                            lkey: mrb.lkey,
                        },
                    ),
                )
                .unwrap();
            a.nic
                .post_send(
                    a.qpn,
                    SendWqe::send(
                        WrId(i as u64),
                        Sge {
                            addr: src.addr,
                            len: LEN,
                            lkey: mra.lkey,
                        },
                    ),
                    false,
                )
                .unwrap();
        }
        let end = sim.block_on({
            let scq = a.send_cq.clone();
            let s = sim.clone();
            async move {
                for _ in 0..MSGS {
                    assert_eq!(wait_cqe(&scq).await.status, CqeStatus::Success);
                }
                s.now().as_ps()
            }
        });
        (end, a.nic.retx_stats().0, a.nic.network().total_drops())
    }
    assert_eq!(run(), run());
}

/// One lossy burst (the `go_back_n_recovers_a_lossy_burst_in_order`
/// shape) under the given retransmission flavor. The fabric, seed, and
/// traffic are identical across calls — the dumbbell's tail-drop
/// schedule is a pure function of the arrival sequence — so two runs
/// differ only in how the protocol recovers the same losses. Returns
/// the received payloads (in post order), the receive-completion wr_ids
/// (in completion order), the replay count, and the drop count.
fn lossy_burst(mode: RetxMode) -> (Vec<Vec<u8>>, Vec<u64>, u64, u64) {
    let sim = Sim::new();
    let (a, b) = lossy_rc_pair(&sim, 10.0, 25_000);
    let cfg = RetxConfig {
        mode,
        ..RetxConfig::default()
    };
    a.nic.set_rc_retx(a.qpn, Some(cfg)).unwrap();
    b.nic.set_rc_retx(b.qpn, Some(cfg)).unwrap();
    const MSGS: usize = 12;
    const LEN: usize = 16 * 1024;
    let mut dsts: Vec<MemRegion> = Vec::new();
    for i in 0..MSGS {
        let src = a.mem.alloc_from(&pattern(i, LEN));
        let dst = b.mem.alloc(LEN, 0);
        let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
        let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(100 + i as u64),
                    Sge {
                        addr: dst.addr,
                        len: dst.len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(i as u64),
                    Sge {
                        addr: src.addr,
                        len: LEN,
                        lkey: mra.lkey,
                    },
                ),
                false,
            )
            .unwrap();
        dsts.push(dst);
    }
    let recv_order = sim.block_on({
        let (rcq, scq) = (b.recv_cq.clone(), a.send_cq.clone());
        async move {
            let mut recv_order = Vec::new();
            for _ in 0..MSGS {
                let c = wait_cqe(&rcq).await;
                assert_eq!(c.status, CqeStatus::Success);
                assert_eq!(c.byte_len, LEN);
                recv_order.push(c.wr_id.0);
            }
            for _ in 0..MSGS {
                assert_eq!(wait_cqe(&scq).await.status, CqeStatus::Success);
            }
            recv_order
        }
    });
    let payloads = dsts
        .iter()
        .map(|dst| b.mem.read(dst.addr, LEN).unwrap()[..].to_vec())
        .collect();
    (
        payloads,
        recv_order,
        a.nic.retx_stats().0,
        a.nic.network().total_drops(),
    )
}

#[test]
fn selective_repeat_delivers_identical_bytes_with_strictly_fewer_replays() {
    // The differential pin: under the *same* deterministic loss schedule,
    // selective repeat must deliver byte-identical payloads and the same
    // completion set as go-back-N — while replaying strictly less,
    // because delivered-but-unacked-out-of-order messages are never
    // thrown away and re-sent.
    let (gbn_bytes, gbn_recv, gbn_replays, gbn_drops) = lossy_burst(RetxMode::Gbn);
    let (sr_bytes, sr_recv, sr_replays, sr_drops) = lossy_burst(RetxMode::Sr);
    // Both runs actually lost traffic and actually recovered it.
    assert!(gbn_drops > 0 && sr_drops > 0, "burst must tail-drop");
    assert!(gbn_replays > 0, "go-back-N must replay");
    // Payloads are byte-identical, message by message.
    assert_eq!(gbn_bytes.len(), sr_bytes.len());
    for (i, (g, s)) in gbn_bytes.iter().zip(&sr_bytes).enumerate() {
        assert_eq!(g, s, "message {i} differs between gbn and sr");
        assert_eq!(&g[..], &pattern(i, g.len())[..], "message {i} corrupted");
    }
    // Identical completion sets. Go-back-N completes in post order by
    // construction; selective repeat may complete out of order (that is
    // the point), so compare as sets.
    let sorted = |mut v: Vec<u64>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sorted(gbn_recv), sorted(sr_recv));
    // The replay economy: strictly fewer replayed messages.
    assert!(
        sr_replays < gbn_replays,
        "sr replayed {sr_replays}, gbn {gbn_replays}"
    );
}

#[test]
fn selective_repeat_recovery_is_deterministic() {
    // Same seed, same schedule, same everything: two selective-repeat
    // runs must agree to the last replay and the last virtual picosecond
    // (the SR analogue of `lossy_recovery_is_deterministic`).
    let run = || {
        let (bytes, recv, replays, drops) = lossy_burst(RetxMode::Sr);
        (bytes, recv, replays, drops)
    };
    assert_eq!(run(), run());
}

#[test]
fn rnr_nak_backs_off_and_recovers_after_late_recv_post() {
    let sim = Sim::new();
    // Lossless fabric: the only obstacle is the missing receive WQE. The
    // send arrives first, draws an RNR NAK, and must be replayed off the
    // RNR backoff timer until the (late) receive post lets it land.
    let (a, b) = lossy_rc_pair(&sim, 25.0, 16 << 20);
    const LEN: usize = 4096;
    let src = a.mem.alloc_from(&pattern(0, LEN));
    let dst = b.mem.alloc(LEN, 0);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(1),
                Sge {
                    addr: src.addr,
                    len: LEN,
                    lkey: mra.lkey,
                },
            ),
            false,
        )
        .unwrap();
    let (scqe, rcqe) = sim.block_on({
        let (scq, rcq) = (a.send_cq.clone(), b.recv_cq.clone());
        let (bn, bq) = (b.nic.clone(), b.qpn);
        let s = sim.clone();
        async move {
            // Post the receive 100 µs in: the default 20 µs RNR base with
            // exponential backoff replays at ~20/60/140 µs, so the third
            // round finds the buffer — well inside the retry budget.
            s.sleep(SimDuration::from_us(100)).await;
            bn.post_recv(
                bq,
                RecvWqe::new(
                    WrId(2),
                    Sge {
                        addr: dst.addr,
                        len: dst.len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
            (wait_cqe(&scq).await, wait_cqe(&rcq).await)
        }
    });
    assert_eq!(scqe.status, CqeStatus::Success);
    assert_eq!(rcqe.status, CqeStatus::Success);
    assert_eq!(rcqe.byte_len, LEN);
    assert_eq!(
        &b.mem.read(dst.addr, LEN).unwrap()[..],
        &pattern(0, LEN)[..]
    );
    assert!(a.nic.retx_stats().0 > 0, "RNR rounds must replay");
    assert_eq!(a.nic.retx_stats().1, 0, "no exhaustion");
    assert_eq!(a.nic.qp_state(a.qpn).unwrap(), QpState::Rts);
    assert_eq!(a.nic.network().total_drops(), 0, "fabric stayed lossless");
}

#[test]
fn rnr_retries_exhaust_into_an_error_completion() {
    let sim = Sim::new();
    let (a, b) = lossy_rc_pair(&sim, 25.0, 16 << 20);
    // Nobody ever posts a receive: every replay draws another RNR NAK
    // until the capped budget errors the QP out.
    let cfg = RetxConfig {
        rnr_timeout: SimDuration::from_us(10),
        max_rnr_retries: 2,
        ..RetxConfig::default()
    };
    a.nic.set_rc_retx(a.qpn, Some(cfg)).unwrap();
    let src = a.mem.alloc_from(&pattern(0, 4096));
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(9),
                Sge {
                    addr: src.addr,
                    len: 4096,
                    lkey: mra.lkey,
                },
            ),
            false,
        )
        .unwrap();
    let cqe = sim.block_on({
        let scq = a.send_cq.clone();
        async move { wait_cqe(&scq).await }
    });
    assert_eq!(cqe.wr_id, WrId(9));
    assert_eq!(cqe.status, CqeStatus::RnrRetryExceeded);
    assert_eq!(a.nic.qp_state(a.qpn).unwrap(), QpState::Error);
    assert_eq!(a.nic.retx_stats().1, 1, "exhaustion counted");
    // 2 RNR rounds replayed before the 3rd NAK errored out.
    assert_eq!(a.nic.retx_stats().0, 2);
    drop(b);
}

#[test]
fn arming_retx_after_traffic_is_rejected() {
    let sim = Sim::new();
    let (a, b) = lossy_rc_pair(&sim, 25.0, 16 << 20);
    // Disarm (allowed anytime), exchange one message, then try to re-arm.
    a.nic.set_rc_retx(a.qpn, None).unwrap();
    b.nic.set_rc_retx(b.qpn, None).unwrap();
    let src = a.mem.alloc_from(&pattern(0, 64));
    let dst = b.mem.alloc(64, 0);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
    b.nic
        .post_recv(
            b.qpn,
            RecvWqe::new(
                WrId(1),
                Sge {
                    addr: dst.addr,
                    len: dst.len,
                    lkey: mrb.lkey,
                },
            ),
        )
        .unwrap();
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(1),
                Sge {
                    addr: src.addr,
                    len: 64,
                    lkey: mra.lkey,
                },
            ),
            false,
        )
        .unwrap();
    sim.block_on({
        let scq = a.send_cq.clone();
        async move {
            wait_cqe(&scq).await;
        }
    });
    // Sender sent and receiver received: both sides now refuse to arm —
    // a fresh sequence state would deadlock against the peer's ids.
    assert!(a
        .nic
        .set_rc_retx(a.qpn, Some(RetxConfig::default()))
        .is_err());
    assert!(b
        .nic
        .set_rc_retx(b.qpn, Some(RetxConfig::default()))
        .is_err());
    // Disarming remains fine.
    a.nic.set_rc_retx(a.qpn, None).unwrap();
}
