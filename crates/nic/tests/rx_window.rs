//! Property tests of the selective-repeat receive window against a naive
//! set-based model.
//!
//! [`SrRxWindow`] is a pure state machine (the engine owns WQE binding,
//! DMA, and packet emission), so it can be driven directly with
//! adversarial fragment schedules — loss, reordering, duplication — drawn
//! from `DetRng`, and every verdict checked against a model that just
//! remembers which `(msg, frag)` pairs have landed in a `BTreeSet`.

use std::collections::{BTreeMap, BTreeSet};

use cord_nic::{SrAction, SrKind, SrRxWindow};
use cord_sim::DetRng;

/// The naive reference: installed fragments as a plain set, plus each
/// message's fragment count.
#[derive(Default)]
struct Model {
    installed: BTreeSet<(u64, u32)>,
    nfrags: BTreeMap<u64, u32>,
}

impl Model {
    fn complete(&self, msg: u64) -> bool {
        self.nfrags
            .get(&msg)
            .is_some_and(|&n| (0..n).all(|f| self.installed.contains(&(msg, f))))
    }

    /// Smallest message id (from 1) not yet fully delivered.
    fn expected(&self) -> u64 {
        (1..).find(|&m| !self.complete(m)).unwrap()
    }

    /// Bitmap of the low 64 fragments `msg` already holds.
    fn low64(&self, msg: u64) -> u64 {
        (0..64u32)
            .filter(|&f| self.installed.contains(&(msg, f)))
            .fold(0u64, |acc, f| acc | 1 << f)
    }
}

/// Deterministic Fisher–Yates shuffle on `DetRng`.
fn shuffle<T>(v: &mut [T], rng: &DetRng) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.uniform_range(0, i as u64 + 1) as usize);
    }
}

/// Drive `msgs` write messages (writes bind implicitly, isolating the
/// bitmap/ordering logic from WQE binding) through the window in rounds:
/// each round offers the outstanding fragments in a random order, loses
/// each with probability `loss`, and re-offers already-installed ones with
/// probability `dup` — exactly the arrival soup a sprayed lossy fabric
/// produces. Every verdict is cross-checked against the model.
fn run_trial(seed: u64, msgs: u64, nfrags: u32, loss: f64, dup: f64) {
    let rng = DetRng::from_seed(seed);
    let mut w = SrRxWindow::new();
    let mut model = Model::default();
    for m in 1..=msgs {
        model.nfrags.insert(m, nfrags);
    }
    let mut rounds = 0;
    while (1..=msgs).any(|m| !model.complete(m)) {
        rounds += 1;
        assert!(rounds < 1000, "livelock: loss schedule never drains");
        let mut offer: Vec<(u64, u32)> = (1..=msgs)
            .flat_map(|m| (0..nfrags).map(move |f| (m, f)))
            .filter(|k| !model.installed.contains(k))
            .collect();
        // Sprinkle duplicates of fragments that already landed.
        for &k in &model.installed {
            if rng.uniform() < dup {
                offer.push(k);
            }
        }
        shuffle(&mut offer, &rng);
        for (m, f) in offer {
            if rng.uniform() < loss {
                continue; // lost on the wire this round
            }
            let was_installed = model.installed.contains(&(m, f));
            let would_complete = !was_installed
                && !model.complete(m)
                && (0..nfrags).all(|g| g == f || model.installed.contains(&(m, g)));
            // The engine's pre-commit resource check must agree with the
            // model about whether this fragment is the finisher.
            assert_eq!(
                w.completes_with(m, f, nfrags),
                would_complete,
                "completes_with({m},{f})"
            );
            let d = w.on_frag(m, f, nfrags, SrKind::Write);
            match d.action {
                SrAction::Install { completes } => {
                    assert!(!was_installed, "installed a duplicate ({m},{f})");
                    model.installed.insert((m, f));
                    assert_eq!(completes, model.complete(m), "completes ({m},{f})");
                }
                SrAction::Duplicate { reack } => {
                    assert!(was_installed, "dropped a fresh fragment ({m},{f})");
                    // Duplicate ACKs regenerate possibly-lost ACKs: only
                    // for fully delivered messages, only on the last
                    // fragment (the one whose original arrival ACKed).
                    assert_eq!(reack, model.complete(m) && f + 1 == nfrags);
                }
                SrAction::Unbound => panic!("write fragments never wait for a WQE"),
            }
            assert_eq!(w.expected_msg(), model.expected(), "after ({m},{f})");
            if let Some((sack_msg, received)) = d.sack {
                // A SACK always names the first missing message and the
                // exact bitmap of its fragments already held.
                assert_eq!(sack_msg, model.expected());
                assert_eq!(received, model.low64(sack_msg));
            }
        }
    }
    assert_eq!(w.expected_msg(), msgs + 1, "all messages delivered");
}

#[test]
fn window_matches_naive_model_under_loss_reorder_and_duplication() {
    for seed in 0..20 {
        run_trial(seed, 12, 4, 0.3, 0.2);
    }
}

#[test]
fn window_matches_model_with_single_fragment_messages() {
    // nfrags = 1: every arrival is its own finisher, the completes_with
    // None-entry path (`!knows && nfrags == 1`) runs constantly.
    for seed in 100..110 {
        run_trial(seed, 30, 1, 0.4, 0.3);
    }
}

#[test]
fn window_matches_model_past_the_64_fragment_bitmap_word() {
    // 130 fragments spans three bitmap words: the wrap between words (and
    // SACKs that can only describe the low 64 bits) must not confuse the
    // dedup or completion logic.
    for seed in 200..204 {
        run_trial(seed, 2, 130, 0.25, 0.15);
    }
}

#[test]
fn reverse_order_delivery_completes_only_on_the_last_hole() {
    let mut w = SrRxWindow::new();
    const N: u32 = 130;
    for f in (1..N).rev() {
        let d = w.on_frag(1, f, N, SrKind::Write);
        assert_eq!(d.action, SrAction::Install { completes: false });
        assert_eq!(w.expected_msg(), 1);
    }
    // Everything but fragment 0 landed; 0 is the finisher.
    assert!(w.completes_with(1, 0, N));
    let d = w.on_frag(1, 0, N, SrKind::Write);
    assert_eq!(d.action, SrAction::Install { completes: true });
    assert_eq!(w.expected_msg(), 2);
    // Late duplicates of the delivered message re-ACK only on the last
    // fragment — the duplicate-ACK edge.
    assert_eq!(
        w.on_frag(1, N - 1, N, SrKind::Write).action,
        SrAction::Duplicate { reack: true }
    );
    assert_eq!(
        w.on_frag(1, 7, N, SrKind::Write).action,
        SrAction::Duplicate { reack: false }
    );
}

#[test]
fn one_sack_per_gap_episode_reset_by_delivery_advance() {
    let mut w = SrRxWindow::new();
    // Message 2 arrives while message 1 is missing: first gap evidence
    // SACKs (naming message 1, empty bitmap), the rest of the episode
    // stays quiet.
    assert_eq!(w.on_frag(2, 0, 2, SrKind::Write).sack, Some((1, 0)));
    assert_eq!(w.on_frag(2, 1, 2, SrKind::Write).sack, None);
    assert_eq!(w.on_frag(3, 0, 2, SrKind::Write).sack, None);
    // Message 1 fills in: the delivery point advances over it (message 2
    // is already done), clearing the episode.
    assert_eq!(w.on_frag(1, 0, 2, SrKind::Write).sack, None);
    assert!(matches!(
        w.on_frag(1, 1, 2, SrKind::Write).action,
        SrAction::Install { completes: true }
    ));
    assert_eq!(w.expected_msg(), 3);
    // A new gap (message 4 ahead of half-done message 3) starts a fresh
    // episode: one SACK, now carrying message 3's received bitmap.
    assert_eq!(w.on_frag(4, 0, 2, SrKind::Write).sack, Some((3, 0b01)));
    assert_eq!(w.on_frag(4, 1, 2, SrKind::Write).sack, None);
}

#[test]
fn sends_bind_in_message_order_whatever_the_arrival_order() {
    // Sends must consume receive WQEs in message order even when their
    // fragments arrive shuffled. Model: a send may bind only when every
    // earlier message has been seen (classified) — the window stalls its
    // binding floor on unclassified gaps.
    for seed in 300..320 {
        let rng = DetRng::from_seed(seed);
        let mut w = SrRxWindow::new();
        const MSGS: u64 = 10;
        let mut arrivals: Vec<u64> = (1..=MSGS).collect();
        shuffle(&mut arrivals, &rng);
        let mut seen = BTreeSet::new();
        let mut bind_order = Vec::new();
        for m in arrivals {
            assert_eq!(w.on_frag(m, 0, 2, SrKind::Send).action, SrAction::Unbound);
            seen.insert(m);
            while let Some(b) = w.next_bind() {
                // Strictly ordered, never skipping an unseen message.
                assert!((1..b).all(|e| seen.contains(&e)), "bound {b} over a gap");
                bind_order.push(b);
                w.bound(b);
            }
        }
        assert_eq!(bind_order, (1..=MSGS).collect::<Vec<_>>());
    }
}

#[test]
fn poisoned_sends_never_block_the_binding_floor() {
    let mut w = SrRxWindow::new();
    // Message 1 is rejected (say, longer than the posted buffer);
    // message 2 arrives as a normal send.
    w.poison(1, 2, SrKind::Send);
    assert_eq!(w.on_frag(2, 0, 1, SrKind::Send).action, SrAction::Unbound);
    // The floor skips the poisoned message and offers message 2.
    assert_eq!(w.next_bind(), Some(2));
    w.bound(2);
    // Fragments of the poisoned message drop silently, without re-ACK.
    assert_eq!(
        w.on_frag(1, 1, 2, SrKind::Write).action,
        SrAction::Duplicate { reack: false }
    );
    // Message 2, now bound, installs and completes.
    assert_eq!(
        w.on_frag(2, 0, 1, SrKind::Send).action,
        SrAction::Install { completes: true }
    );
}
