//! Wire packet format.
//!
//! Messages are segmented into MTU-sized fragments; each fragment is one
//! packet/frame on the fabric. RC adds acknowledgement and NAK packets
//! (coalesced to one per message, which is what ConnectX-class hardware
//! converges to under load).

use cord_hw::PayloadSeg;

use crate::types::{NodeId, QpNum, RKey};

/// Reasons a responder NAKs a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NakReason {
    /// Receiver not ready: no receive WQE posted (retries exhausted).
    Rnr,
    /// rkey/range/permission check failed at the responder.
    RemoteAccess,
    /// Message longer than the posted receive buffer.
    LengthError,
    /// Out-of-sequence arrival on a retransmitting QP (IB's PSN sequence
    /// error): `msg_id` names the first message the responder is missing,
    /// and the requester goes back to it and replays. Only emitted when
    /// RC retransmission is armed; unlike the other reasons it is
    /// recoverable, not fatal.
    Sequence,
}

/// Packet body variants.
#[derive(Debug, Clone)]
pub enum PacketKind {
    /// Fragment of a two-sided send.
    SendFrag {
        msg_id: u64,
        frag: u32,
        nfrags: u32,
        total_len: usize,
        offset: usize,
        payload: PayloadSeg,
        imm: Option<u32>,
    },
    /// Fragment of an RDMA write.
    WriteFrag {
        msg_id: u64,
        frag: u32,
        nfrags: u32,
        total_len: usize,
        /// Remote base address of the *message* (fragment lands at
        /// `raddr + offset`).
        raddr: u64,
        rkey: RKey,
        offset: usize,
        payload: PayloadSeg,
        imm: Option<u32>,
    },
    /// RDMA read request (header only).
    ReadReq {
        msg_id: u64,
        raddr: u64,
        rkey: RKey,
        len: usize,
    },
    /// Fragment of an RDMA read response.
    ReadResp {
        msg_id: u64,
        frag: u32,
        nfrags: u32,
        offset: usize,
        payload: PayloadSeg,
    },
    /// Positive acknowledgement of a whole message (RC).
    Ack { msg_id: u64 },
    /// Negative acknowledgement (RC).
    Nak { msg_id: u64, reason: NakReason },
    /// Selective acknowledgement (RC with selective repeat armed): names
    /// the first message the responder is missing plus the bitmap of that
    /// message's fragments already held, so the requester replays only
    /// the holes. Fragments past bit 63 are always replayed.
    Sack { msg_id: u64, received: u64 },
    /// Congestion notification packet: the receiver's echo of an
    /// ECN-marked arrival back to the sender (DCQCN's feedback signal).
    Cnp,
}

/// One packet on the wire.
#[derive(Debug, Clone)]
pub struct Packet {
    pub src_node: NodeId,
    pub dst_node: NodeId,
    pub src_qpn: QpNum,
    pub dst_qpn: QpNum,
    /// ECN congestion-experienced bit: false on the wire out, set by the
    /// fabric's switches, read by the receiving NIC (which echoes a
    /// [`PacketKind::Cnp`]).
    pub ecn: bool,
    pub kind: PacketKind,
}

impl Packet {
    /// Payload byte count carried by this packet.
    pub fn payload_len(&self) -> usize {
        match &self.kind {
            PacketKind::SendFrag { payload, .. }
            | PacketKind::WriteFrag { payload, .. }
            | PacketKind::ReadResp { payload, .. } => payload.len(),
            PacketKind::ReadReq { .. }
            | PacketKind::Ack { .. }
            | PacketKind::Nak { .. }
            | PacketKind::Sack { .. }
            | PacketKind::Cnp => 0,
        }
    }

    /// Bytes occupied on the wire including the per-packet header.
    pub fn wire_bytes(&self, header_bytes: usize) -> usize {
        self.payload_len() + header_bytes
    }

    /// True for request packets that carry message payload.
    pub fn is_data(&self) -> bool {
        self.payload_len() > 0
            || matches!(
                self.kind,
                PacketKind::SendFrag { .. } | PacketKind::WriteFrag { .. }
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(kind: PacketKind) -> Packet {
        Packet {
            src_node: 0,
            dst_node: 1,
            src_qpn: QpNum(1),
            dst_qpn: QpNum(2),
            ecn: false,
            kind,
        }
    }

    #[test]
    fn wire_bytes_include_header() {
        let p = pkt(PacketKind::SendFrag {
            msg_id: 1,
            frag: 0,
            nfrags: 1,
            total_len: 100,
            offset: 0,
            payload: PayloadSeg::from(vec![0u8; 100]),
            imm: None,
        });
        assert_eq!(p.payload_len(), 100);
        assert_eq!(p.wire_bytes(66), 166);
        assert!(p.is_data());
    }

    #[test]
    fn control_packets_are_header_only() {
        let ack = pkt(PacketKind::Ack { msg_id: 3 });
        assert_eq!(ack.payload_len(), 0);
        assert_eq!(ack.wire_bytes(66), 66);
        assert!(!ack.is_data());
        let rr = pkt(PacketKind::ReadReq {
            msg_id: 1,
            raddr: 0x1000,
            rkey: RKey(5),
            len: 4096,
        });
        assert_eq!(rr.wire_bytes(40), 40);
        let cnp = pkt(PacketKind::Cnp);
        assert_eq!(cnp.wire_bytes(66), 66);
        assert!(!cnp.is_data());
    }

    #[test]
    fn zero_length_send_is_still_data() {
        let p = pkt(PacketKind::SendFrag {
            msg_id: 1,
            frag: 0,
            nfrags: 1,
            total_len: 0,
            offset: 0,
            payload: PayloadSeg::from(Vec::new()),
            imm: None,
        });
        assert!(p.is_data());
    }
}
