//! Work-queue elements: what gets posted to send and receive queues.

use cord_hw::PayloadSeg;

use crate::types::{LKey, NodeId, Opcode, QpNum, RKey, WrId};

/// A scatter/gather entry (we model a single SGE per WQE, like perftest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sge {
    pub addr: u64,
    pub len: usize,
    pub lkey: LKey,
}

/// Destination of a UD send (address handle + remote QPN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdDest {
    pub node: NodeId,
    pub qpn: QpNum,
}

/// A send work request.
#[derive(Debug, Clone)]
pub struct SendWqe {
    pub wr_id: WrId,
    pub opcode: Opcode,
    pub sge: Sge,
    /// Remote address/rkey for one-sided operations.
    pub remote: Option<(u64, RKey)>,
    /// Destination for UD sends.
    pub ud_dest: Option<UdDest>,
    /// Immediate data (RDMA write-with-imm or send-with-imm).
    pub imm: Option<u32>,
    /// Request a CQE on completion.
    pub signaled: bool,
    /// Inline payload captured at post time (bypass fast path for small
    /// sends; the CoRD prototype lacks this, §5).
    pub inline_data: Option<PayloadSeg>,
}

impl SendWqe {
    /// A signaled two-sided send.
    pub fn send(wr_id: WrId, sge: Sge) -> Self {
        SendWqe {
            wr_id,
            opcode: Opcode::Send,
            sge,
            remote: None,
            ud_dest: None,
            imm: None,
            signaled: true,
            inline_data: None,
        }
    }

    /// A signaled RDMA write.
    pub fn write(wr_id: WrId, sge: Sge, raddr: u64, rkey: RKey) -> Self {
        SendWqe {
            wr_id,
            opcode: Opcode::RdmaWrite,
            sge,
            remote: Some((raddr, rkey)),
            ud_dest: None,
            imm: None,
            signaled: true,
            inline_data: None,
        }
    }

    /// A signaled RDMA read.
    pub fn read(wr_id: WrId, sge: Sge, raddr: u64, rkey: RKey) -> Self {
        SendWqe {
            wr_id,
            opcode: Opcode::RdmaRead,
            sge,
            remote: Some((raddr, rkey)),
            ud_dest: None,
            imm: None,
            signaled: true,
            inline_data: None,
        }
    }

    pub fn with_imm(mut self, imm: u32) -> Self {
        self.imm = Some(imm);
        self
    }

    pub fn with_ud_dest(mut self, dest: UdDest) -> Self {
        self.ud_dest = Some(dest);
        self
    }

    pub fn unsignaled(mut self) -> Self {
        self.signaled = false;
        self
    }

    pub fn len(&self) -> usize {
        self.sge.len
    }

    pub fn is_empty(&self) -> bool {
        self.sge.len == 0
    }
}

/// A receive work request.
#[derive(Debug, Clone)]
pub struct RecvWqe {
    pub wr_id: WrId,
    pub sge: Sge,
}

impl RecvWqe {
    pub fn new(wr_id: WrId, sge: Sge) -> Self {
        RecvWqe { wr_id, sge }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sge() -> Sge {
        Sge {
            addr: 0x1_0000,
            len: 4096,
            lkey: LKey(1),
        }
    }

    #[test]
    fn builders_set_opcode_and_remote() {
        let s = SendWqe::send(WrId(1), sge());
        assert_eq!(s.opcode, Opcode::Send);
        assert!(s.remote.is_none());
        assert!(s.signaled);

        let w = SendWqe::write(WrId(2), sge(), 0x2000, RKey(9));
        assert_eq!(w.opcode, Opcode::RdmaWrite);
        assert_eq!(w.remote, Some((0x2000, RKey(9))));

        let r = SendWqe::read(WrId(3), sge(), 0x3000, RKey(9));
        assert_eq!(r.opcode, Opcode::RdmaRead);
    }

    #[test]
    fn modifiers_compose() {
        let s = SendWqe::send(WrId(1), sge())
            .with_imm(0xDEAD)
            .with_ud_dest(UdDest {
                node: 1,
                qpn: QpNum(7),
            })
            .unsignaled();
        assert_eq!(s.imm, Some(0xDEAD));
        assert_eq!(s.ud_dest.unwrap().qpn, QpNum(7));
        assert!(!s.signaled);
        assert_eq!(s.len(), 4096);
    }
}
