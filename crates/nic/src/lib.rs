//! # cord-nic — ConnectX-style RDMA NIC model
//!
//! A queue-pair/CQE-accurate NIC on the `cord-sim` discrete-event engine:
//!
//! * memory regions with lkey/rkey protection ([`mr`]),
//! * RC and UD queue pairs with the IB state machine ([`qp`]),
//! * two-sided send/recv and one-sided RDMA read/write with MTU
//!   segmentation, DMA pipelining, per-message coalesced ACKs ([`engine`]),
//! * RC retransmission in two flavors ([`RetxMode`]): go-back-N, and
//!   selective repeat ([`SrRxWindow`]) that installs fragments out of
//!   order and SACKs holes — the receiver `cord-net`'s per-packet spray
//!   routing needs,
//! * inline sends (bypass only — the CoRD prototype lacks them, §5 of the
//!   paper),
//! * completion queues with polling and event (interrupt) consumption
//!   ([`cq`]).
//!
//! Payloads are real bytes moved end-to-end, so data integrity is testable
//! across segmentation and reassembly.

pub mod cc;
pub mod cq;
pub mod engine;
pub mod mr;
pub mod packet;
pub mod qp;
pub mod types;
pub mod wqe;

pub use cc::{CcAlgorithm, Dcqcn, CNP_MIN_INTERVAL};
pub use cq::{Cq, Cqe, CqeOpcode, CqeStatus};
pub use engine::{Nic, TX_BURST, TX_WINDOW};
pub use mr::{Mr, MrError, MrTable};
pub use packet::{NakReason, Packet, PacketKind};
pub use qp::{RetxConfig, RetxMode, RetxState, RxSeq, SrAction, SrDecision, SrKind, SrRxWindow};
pub use types::{
    Access, CqId, LKey, NodeId, Opcode, QpNum, QpState, RKey, Transport, VerbsError, WrId,
};
pub use wqe::{RecvWqe, SendWqe, Sge, UdDest};

use std::rc::Rc;

use cord_hw::MachineSpec;
use cord_net::{NetConfig, Network};
use cord_sim::{Sim, Trace};

/// Build `spec.nodes` NICs connected by one ideal full-mesh network — the
/// seed's behavior (test/bench helper and the building block
/// `cord-core::Fabric` wraps).
pub fn build_cluster(sim: &Sim, spec: &MachineSpec, trace: Trace) -> Vec<Nic> {
    build_cluster_with(sim, spec, NetConfig::default(), trace)
}

/// Build `spec.nodes` NICs over an explicit network configuration
/// (topology, ECN thresholds, buffer sizes — see `cord-net`).
pub fn build_cluster_with(sim: &Sim, spec: &MachineSpec, cfg: NetConfig, trace: Trace) -> Vec<Nic> {
    let (net, rxs) = Network::new_traced(sim, spec.link.clone(), spec.nodes, cfg, trace.clone());
    let net = Rc::new(net);
    rxs.into_iter()
        .enumerate()
        .map(|(node, rx)| Nic::new(sim, spec, node, Rc::clone(&net), rx, trace.clone()))
        .collect()
}
