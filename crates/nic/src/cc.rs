//! Per-QP congestion control: a DCQCN-style rate limiter.
//!
//! The control loop mirrors the RoCEv2 DCQCN algorithm (Zhu et al.,
//! SIGCOMM'15), simplified where the full spec adds little to a
//! deterministic simulation:
//!
//! * **Marking** — switches in `cord-net` set the frame's ECN bit when an
//!   output queue is at or above its threshold.
//! * **Notification** — the receiving NIC echoes a CNP packet to the
//!   sender, at most one per [`CNP_MIN_INTERVAL`] per QP.
//! * **Reaction (this module)** — on a CNP the sender raises `alpha`
//!   (its congestion estimate) and, at most once per
//!   [`RATE_CUT_MIN_INTERVAL`], multiplicatively cuts its rate:
//!   `rate *= 1 - alpha/2`, remembering the pre-cut rate as the recovery
//!   target. Recovery runs on the sim clock in [`TIMER`] periods: the
//!   first [`FAST_RECOVERY_STAGES`] periods halve the gap to the target
//!   (fast recovery); afterwards the target itself grows by [`AI_GBPS`]
//!   per period (additive increase). Quiet periods also decay `alpha`.
//!   Hyper increase is omitted (it only accelerates the last few percent).
//!
//! Timers are evaluated lazily: state advances when the TX scheduler or a
//! CNP touches the QP, so an idle QP costs nothing. DCQCN is an RC
//! mechanism: UD receivers never echo CNPs, so UD traffic is never
//! throttled even with the knob set. The limiter paces data fragments
//! only — ACKs, NAKs, read requests, and CNPs themselves are never
//! throttled. RDMA-read responder fragments share the QP's rate-limiter
//! gate with the send/write path, so read-heavy workloads cannot stream
//! past their CNP-cut rate.
//!
//! Everything here is pure state arithmetic on `SimTime`, so the loop is
//! deterministic end to end.

use std::fmt;
use std::str::FromStr;

use cord_sim::{SimDuration, SimTime};

/// Per-QP congestion-control algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcAlgorithm {
    /// No congestion control: transmit as fast as the NIC pipeline allows
    /// (the seed's behavior).
    #[default]
    None,
    /// DCQCN: ECN echo as CNPs + multiplicative decrease / timed recovery.
    Dcqcn,
}

impl fmt::Display for CcAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcAlgorithm::None => write!(f, "none"),
            CcAlgorithm::Dcqcn => write!(f, "dcqcn"),
        }
    }
}

impl FromStr for CcAlgorithm {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(CcAlgorithm::None),
            "dcqcn" => Ok(CcAlgorithm::Dcqcn),
            other => Err(format!("unknown cc algorithm: {other} (none|dcqcn)")),
        }
    }
}

/// Minimum gap between CNPs echoed for one QP (receiver side).
pub const CNP_MIN_INTERVAL: SimDuration = SimDuration::from_us(50);

/// Minimum gap between successive multiplicative rate cuts.
pub const RATE_CUT_MIN_INTERVAL: SimDuration = SimDuration::from_us(50);

/// Period of the merged alpha-decay / rate-increase timer.
pub const TIMER: SimDuration = SimDuration::from_us(55);

/// Timer periods that halve the gap to the target before additive
/// increase starts raising the target itself.
pub const FAST_RECOVERY_STAGES: u32 = 5;

/// Additive increase per timer period once fast recovery completes.
pub const AI_GBPS: f64 = 2.0;

/// EWMA gain for the congestion estimate `alpha`.
const G: f64 = 1.0 / 16.0;

/// Timer periods processed per lazy catch-up before snapping to "fully
/// recovered" (an idle QP converges to line rate well before this).
const MAX_CATCHUP_PERIODS: u32 = 64;

/// DCQCN sender state for one QP.
#[derive(Debug, Clone)]
pub struct Dcqcn {
    line_gbps: f64,
    min_gbps: f64,
    /// Current sending rate.
    pub rate_gbps: f64,
    /// Recovery target (the rate before the last cut).
    pub target_gbps: f64,
    /// Congestion estimate in [0, 1].
    pub alpha: f64,
    /// Earliest instant the next data fragment may enter the wire.
    pub next_send: SimTime,
    last_timer: SimTime,
    last_cut: Option<SimTime>,
    cnp_since_timer: bool,
    stage: u32,
    /// CNPs absorbed (diagnostics).
    pub cnps: u64,
    /// Multiplicative cuts taken (diagnostics).
    pub cuts: u64,
}

impl Dcqcn {
    /// Fresh state at line rate.
    pub fn new(line_gbps: f64, now: SimTime) -> Dcqcn {
        Dcqcn {
            line_gbps,
            min_gbps: line_gbps / 1000.0,
            rate_gbps: line_gbps,
            target_gbps: line_gbps,
            alpha: 1.0,
            next_send: SimTime::ZERO,
            last_timer: now,
            last_cut: None,
            cnp_since_timer: false,
            stage: 0,
            cnps: 0,
            cuts: 0,
        }
    }

    /// Lazily advance the alpha/increase timers to `now`.
    pub fn advance(&mut self, now: SimTime) {
        let mut periods = 0;
        while self.last_timer + TIMER <= now {
            self.last_timer += TIMER;
            if self.cnp_since_timer {
                self.cnp_since_timer = false;
            } else {
                self.alpha *= 1.0 - G;
            }
            self.stage += 1;
            if self.stage > FAST_RECOVERY_STAGES {
                self.target_gbps = (self.target_gbps + AI_GBPS).min(self.line_gbps);
            }
            self.rate_gbps = ((self.rate_gbps + self.target_gbps) / 2.0).min(self.line_gbps);
            periods += 1;
            if periods >= MAX_CATCHUP_PERIODS {
                // Long idle (no CNP for > 3.5 ms): snap to fully
                // recovered, whatever the line rate, and catch the timer
                // up.
                self.target_gbps = self.line_gbps;
                self.rate_gbps = self.line_gbps;
                self.last_timer = now;
                break;
            }
        }
    }

    /// React to a congestion notification.
    pub fn on_cnp(&mut self, now: SimTime) {
        self.advance(now);
        self.cnps += 1;
        self.cnp_since_timer = true;
        self.alpha = (1.0 - G) * self.alpha + G;
        let may_cut = self
            .last_cut
            .is_none_or(|t| now.since(t) >= RATE_CUT_MIN_INTERVAL);
        if may_cut {
            self.target_gbps = self.rate_gbps;
            self.rate_gbps = (self.rate_gbps * (1.0 - self.alpha / 2.0)).max(self.min_gbps);
            self.stage = 0;
            self.last_cut = Some(now);
            self.cuts += 1;
        }
    }

    /// If the QP must wait before launching its next data fragment,
    /// returns the instant it becomes eligible.
    pub fn gate(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        (self.next_send > now).then_some(self.next_send)
    }

    /// Account one `wire_bytes` fragment against the current rate.
    pub fn charge(&mut self, now: SimTime, wire_bytes: usize) {
        let gap = SimDuration::from_ns_f64(wire_bytes as f64 * 8.0 / self.rate_gbps);
        self.next_send = self.next_send.max(now) + gap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: f64 = 100.0;

    fn at_us(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn cc_algorithm_parses_and_displays() {
        assert_eq!("none".parse::<CcAlgorithm>().unwrap(), CcAlgorithm::None);
        assert_eq!("dcqcn".parse::<CcAlgorithm>().unwrap(), CcAlgorithm::Dcqcn);
        assert!("ecn".parse::<CcAlgorithm>().is_err());
        assert_eq!(CcAlgorithm::Dcqcn.to_string(), "dcqcn");
        assert_eq!(CcAlgorithm::default(), CcAlgorithm::None);
    }

    #[test]
    fn cnp_cuts_rate_multiplicatively() {
        let mut d = Dcqcn::new(LINE, SimTime::ZERO);
        d.on_cnp(at_us(1));
        // alpha ≈ 1 on the first cut: rate halves (at most).
        assert!(d.rate_gbps < 0.6 * LINE, "rate {}", d.rate_gbps);
        assert_eq!(d.target_gbps, LINE);
        assert_eq!((d.cnps, d.cuts), (1, 1));
    }

    #[test]
    fn cuts_are_rate_limited() {
        let mut d = Dcqcn::new(LINE, SimTime::ZERO);
        d.on_cnp(at_us(1));
        let after_first = d.rate_gbps;
        // A storm of CNPs inside the hold-off window cuts only once.
        for us in 2..40 {
            d.on_cnp(at_us(us));
        }
        assert_eq!(d.cuts, 1);
        assert_eq!(d.rate_gbps, after_first);
        // Past the hold-off, the next CNP cuts again.
        d.on_cnp(at_us(60));
        assert_eq!(d.cuts, 2);
        assert!(d.rate_gbps < after_first);
    }

    #[test]
    fn fast_recovery_halves_gap_then_additive_increase() {
        let mut d = Dcqcn::new(LINE, SimTime::ZERO);
        d.on_cnp(at_us(1));
        let cut = d.rate_gbps;
        // One timer period: halfway back to the target.
        d.advance(at_us(1) + TIMER);
        assert!((d.rate_gbps - (cut + LINE) / 2.0).abs() < 1e-9);
        // After fast recovery the target itself starts growing; with the
        // target already at line rate, rate converges there.
        d.advance(at_us(2000));
        assert!(
            (d.rate_gbps - LINE).abs() < 1e-6,
            "recovered {}",
            d.rate_gbps
        );
        assert!(d.alpha < 0.2, "alpha decays when quiet: {}", d.alpha);
    }

    #[test]
    fn rate_never_falls_below_floor() {
        let mut d = Dcqcn::new(LINE, SimTime::ZERO);
        for i in 0..200u64 {
            d.on_cnp(at_us(1 + i * 60));
        }
        assert!(d.rate_gbps >= LINE / 1000.0);
        assert_eq!(d.cuts, 200);
    }

    #[test]
    fn pacing_spaces_fragments_at_the_current_rate() {
        let mut d = Dcqcn::new(LINE, SimTime::ZERO);
        d.rate_gbps = 10.0; // 1250 B = 1 µs per fragment
        let now = at_us(5);
        assert_eq!(d.gate(now), None, "first fragment unthrottled");
        d.charge(now, 1250);
        assert_eq!(d.gate(now), Some(now + SimDuration::from_us(1)));
        // Back-to-back charges accumulate.
        d.charge(now, 1250);
        assert_eq!(d.gate(now), Some(now + SimDuration::from_us(2)));
        // Once the gap elapses, the gate opens.
        assert_eq!(d.gate(now + SimDuration::from_us(2)), None);
    }

    #[test]
    fn long_idle_catchup_is_bounded_and_converges() {
        let mut d = Dcqcn::new(LINE, SimTime::ZERO);
        d.on_cnp(at_us(1));
        // A full simulated second of idleness — far more periods than the
        // catch-up bound — must still land at line rate.
        d.advance(SimTime::ZERO + SimDuration::from_secs(1));
        assert!((d.rate_gbps - LINE).abs() < 1e-6);
        // Same on a fast link, where additive increase alone could not
        // cover the gap within the catch-up bound: the snap must land at
        // full recovery, not 58 % of line.
        let mut d = Dcqcn::new(400.0, SimTime::ZERO);
        for i in 0..10u64 {
            d.on_cnp(at_us(1 + i * 60));
        }
        assert!(d.rate_gbps < 40.0, "deeply cut: {}", d.rate_gbps);
        d.advance(SimTime::ZERO + SimDuration::from_secs(1));
        assert!((d.rate_gbps - 400.0).abs() < 1e-6, "{}", d.rate_gbps);
    }
}
