//! Queue pairs: state machine, work queues, and in-flight transfer state.

use std::collections::{HashMap, VecDeque};

use cord_sim::SimTime;

use crate::cc::{CcAlgorithm, Dcqcn};
use crate::cq::Cq;
use crate::types::{NodeId, Opcode, QpNum, QpState, Transport, VerbsError, WrId};
use crate::wqe::{RecvWqe, SendWqe};

/// Sender-side record awaiting an ACK/NAK (RC sends and writes).
#[derive(Debug, Clone)]
pub struct PendingAck {
    pub wr_id: WrId,
    pub signaled: bool,
    pub opcode: Opcode,
    pub byte_len: usize,
}

/// Requester-side record of an outstanding RDMA read.
#[derive(Debug, Clone)]
pub struct PendingRead {
    pub wr_id: WrId,
    pub signaled: bool,
    /// Local landing zone.
    pub addr: u64,
    pub len: usize,
    pub lkey: crate::types::LKey,
}

/// Responder-side reassembly of the in-progress inbound send (RC is
/// strictly ordered per QP, so one slot suffices).
#[derive(Clone)]
pub struct RecvAssembly {
    pub msg_id: u64,
    pub wqe: RecvWqe,
    pub received: usize,
    pub total_len: usize,
    /// Landing arena resolved from the receive WQE's lkey.
    pub mem: cord_hw::GuestMem,
}

/// TX progress of the WQE currently being segmented.
#[derive(Clone)]
pub struct TxProgress {
    pub wqe: SendWqe,
    pub msg_id: u64,
    pub next_frag: u32,
    pub nfrags: u32,
    /// Source arena resolved from the WQE's lkey.
    pub mem: cord_hw::GuestMem,
}

/// A queue pair.
pub struct Qp {
    pub num: QpNum,
    pub transport: Transport,
    pub state: QpState,
    pub send_cq: Cq,
    pub recv_cq: Cq,
    /// Connected peer (RC only).
    pub peer: Option<(NodeId, QpNum)>,
    pub sq: VecDeque<SendWqe>,
    pub rq: VecDeque<RecvWqe>,
    pub sq_depth: usize,
    pub rq_depth: usize,
    pub next_msg_id: u64,
    /// The WQE currently being transmitted (burst-resumable).
    pub tx: Option<TxProgress>,
    /// Whether this QP sits in the NIC's round-robin TX ring.
    pub in_ring: bool,
    /// TX stalled on the outstanding-read limit.
    pub stalled_rd: bool,
    pub outstanding_reads: usize,
    pub max_rd_atomic: usize,
    pub pending_acks: HashMap<u64, PendingAck>,
    pub pending_reads: HashMap<u64, PendingRead>,
    pub cur_recv: Option<RecvAssembly>,
    /// Inbound write message currently being dropped after a NAK.
    pub drop_msg: Option<u64>,
    /// DCQCN sender state (`Some` iff the QP's CC knob is `Dcqcn`). On the
    /// receive side its presence also enables CNP echo for marked arrivals.
    pub dcqcn: Option<Dcqcn>,
    /// Last CNP echoed from this QP (receiver-side CNP rate limiting).
    pub last_cnp_tx: Option<SimTime>,
    /// Counters for observability (exported by the CoRD stats policy).
    pub tx_msgs: u64,
    pub rx_msgs: u64,
    pub tx_bytes: u64,
    pub rx_bytes: u64,
}

impl Qp {
    pub fn new(
        num: QpNum,
        transport: Transport,
        send_cq: Cq,
        recv_cq: Cq,
        sq_depth: usize,
        rq_depth: usize,
        max_rd_atomic: usize,
    ) -> Self {
        Qp {
            num,
            transport,
            state: QpState::Reset,
            send_cq,
            recv_cq,
            peer: None,
            sq: VecDeque::new(),
            rq: VecDeque::new(),
            sq_depth,
            rq_depth,
            next_msg_id: 1,
            tx: None,
            in_ring: false,
            stalled_rd: false,
            outstanding_reads: 0,
            max_rd_atomic,
            pending_acks: HashMap::new(),
            pending_reads: HashMap::new(),
            cur_recv: None,
            drop_msg: None,
            dcqcn: None,
            last_cnp_tx: None,
            tx_msgs: 0,
            rx_msgs: 0,
            tx_bytes: 0,
            rx_bytes: 0,
        }
    }

    /// RESET → INIT (`ibv_modify_qp` with pkey/port).
    pub fn to_init(&mut self) -> Result<(), VerbsError> {
        match self.state {
            QpState::Reset => {
                self.state = QpState::Init;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "RESET",
                actual: s,
            }),
        }
    }

    /// INIT → RTR; RC requires the remote endpoint.
    pub fn to_rtr(&mut self, peer: Option<(NodeId, QpNum)>) -> Result<(), VerbsError> {
        match self.state {
            QpState::Init => {
                if self.transport == Transport::Rc && peer.is_none() {
                    return Err(VerbsError::MissingRemoteInfo);
                }
                self.peer = peer;
                self.state = QpState::Rtr;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "INIT",
                actual: s,
            }),
        }
    }

    /// RTR → RTS.
    pub fn to_rts(&mut self) -> Result<(), VerbsError> {
        match self.state {
            QpState::Rtr => {
                self.state = QpState::Rts;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "RTR",
                actual: s,
            }),
        }
    }

    /// Validate and enqueue a send WQE. Does not ring the doorbell.
    pub fn push_send(&mut self, wqe: SendWqe, mtu: usize) -> Result<(), VerbsError> {
        if self.state != QpState::Rts {
            return Err(VerbsError::InvalidState {
                expected: "RTS",
                actual: self.state,
            });
        }
        if self.sq.len() >= self.sq_depth {
            return Err(VerbsError::QueueFull);
        }
        match self.transport {
            Transport::Ud => {
                if wqe.opcode != Opcode::Send {
                    return Err(VerbsError::OpNotSupported {
                        op: wqe.opcode,
                        transport: Transport::Ud,
                    });
                }
                if wqe.sge.len > mtu {
                    return Err(VerbsError::MessageTooLong {
                        len: wqe.sge.len,
                        max: mtu,
                    });
                }
                if wqe.ud_dest.is_none() {
                    return Err(VerbsError::MissingDestination);
                }
            }
            Transport::Rc => {
                if wqe.opcode != Opcode::Send && wqe.remote.is_none() {
                    return Err(VerbsError::MissingRemoteInfo);
                }
            }
        }
        self.sq.push_back(wqe);
        Ok(())
    }

    /// Validate and enqueue a receive WQE.
    pub fn push_recv(&mut self, wqe: RecvWqe) -> Result<(), VerbsError> {
        // Receives may be posted from INIT onwards (IB allows posting in
        // INIT; they only complete once RTR).
        match self.state {
            QpState::Init | QpState::Rtr | QpState::Rts => {}
            s => {
                return Err(VerbsError::InvalidState {
                    expected: "INIT/RTR/RTS",
                    actual: s,
                })
            }
        }
        if self.rq.len() >= self.rq_depth {
            return Err(VerbsError::QueueFull);
        }
        self.rq.push_back(wqe);
        Ok(())
    }

    /// The QP's congestion-control algorithm.
    pub fn cc(&self) -> CcAlgorithm {
        if self.dcqcn.is_some() {
            CcAlgorithm::Dcqcn
        } else {
            CcAlgorithm::None
        }
    }

    pub fn alloc_msg_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    /// Move to the error state; remaining queued WQEs flush with errors.
    /// Returns the flushed send WQEs (the engine emits flush CQEs).
    pub fn enter_error(&mut self) -> (Vec<SendWqe>, Vec<RecvWqe>) {
        self.state = QpState::Error;
        let sq = self.sq.drain(..).collect();
        let rq = self.rq.drain(..).collect();
        (sq, rq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Cq;
    use crate::types::{CqId, LKey, RKey};
    use crate::wqe::{Sge, UdDest};

    fn mk_qp(t: Transport) -> Qp {
        Qp::new(
            QpNum(1),
            t,
            Cq::new(CqId(0), 64),
            Cq::new(CqId(1), 64),
            4,
            4,
            16,
        )
    }

    fn sge(len: usize) -> Sge {
        Sge {
            addr: 0x1_0000,
            len,
            lkey: LKey(1),
        }
    }

    #[test]
    fn state_machine_happy_path() {
        let mut qp = mk_qp(Transport::Rc);
        assert_eq!(qp.state, QpState::Reset);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        assert_eq!(qp.state, QpState::Rts);
        assert_eq!(qp.peer, Some((1, QpNum(2))));
    }

    #[test]
    fn state_machine_rejects_skips() {
        let mut qp = mk_qp(Transport::Rc);
        assert!(qp.to_rtr(Some((1, QpNum(2)))).is_err());
        assert!(qp.to_rts().is_err());
        qp.to_init().unwrap();
        assert!(qp.to_init().is_err(), "double INIT");
        assert!(qp.to_rts().is_err(), "INIT→RTS skips RTR");
    }

    #[test]
    fn rc_rtr_requires_peer() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        assert_eq!(qp.to_rtr(None), Err(VerbsError::MissingRemoteInfo));
        // UD needs no peer.
        let mut ud = mk_qp(Transport::Ud);
        ud.to_init().unwrap();
        ud.to_rtr(None).unwrap();
    }

    #[test]
    fn post_send_requires_rts() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        let err = qp.push_send(SendWqe::send(WrId(1), sge(16)), 4096);
        assert!(matches!(err, Err(VerbsError::InvalidState { .. })));
    }

    #[test]
    fn sq_depth_enforced() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        for i in 0..4 {
            qp.push_send(SendWqe::send(WrId(i), sge(16)), 4096).unwrap();
        }
        assert_eq!(
            qp.push_send(SendWqe::send(WrId(9), sge(16)), 4096),
            Err(VerbsError::QueueFull)
        );
    }

    #[test]
    fn ud_restrictions() {
        let mut qp = mk_qp(Transport::Ud);
        qp.to_init().unwrap();
        qp.to_rtr(None).unwrap();
        qp.to_rts().unwrap();
        // RDMA ops rejected.
        let w = SendWqe::write(WrId(1), sge(16), 0x2000, RKey(1));
        assert!(matches!(
            qp.push_send(w, 4096),
            Err(VerbsError::OpNotSupported { .. })
        ));
        // Over-MTU rejected.
        let big = SendWqe::send(WrId(2), sge(5000)).with_ud_dest(UdDest {
            node: 1,
            qpn: QpNum(3),
        });
        assert!(matches!(
            qp.push_send(big, 4096),
            Err(VerbsError::MessageTooLong { .. })
        ));
        // Missing destination rejected.
        let nodest = SendWqe::send(WrId(3), sge(64));
        assert_eq!(
            qp.push_send(nodest, 4096),
            Err(VerbsError::MissingDestination)
        );
        // Valid UD send accepted.
        let ok = SendWqe::send(WrId(4), sge(64)).with_ud_dest(UdDest {
            node: 1,
            qpn: QpNum(3),
        });
        qp.push_send(ok, 4096).unwrap();
    }

    #[test]
    fn rc_one_sided_requires_remote() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        let mut w = SendWqe::write(WrId(1), sge(16), 0x2000, RKey(1));
        w.remote = None;
        assert_eq!(qp.push_send(w, 4096), Err(VerbsError::MissingRemoteInfo));
    }

    #[test]
    fn recv_posting_allowed_from_init() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.push_recv(RecvWqe::new(WrId(1), sge(64))).unwrap();
        // But not in RESET.
        let mut fresh = mk_qp(Transport::Rc);
        assert!(fresh.push_recv(RecvWqe::new(WrId(1), sge(64))).is_err());
    }

    #[test]
    fn error_state_flushes_queues() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        qp.push_send(SendWqe::send(WrId(1), sge(16)), 4096).unwrap();
        qp.push_recv(RecvWqe::new(WrId(2), sge(16))).unwrap();
        let (sq, rq) = qp.enter_error();
        assert_eq!(sq.len(), 1);
        assert_eq!(rq.len(), 1);
        assert_eq!(qp.state, QpState::Error);
        assert!(qp.push_send(SendWqe::send(WrId(3), sge(16)), 4096).is_err());
    }

    #[test]
    fn msg_ids_are_unique() {
        let mut qp = mk_qp(Transport::Rc);
        let a = qp.alloc_msg_id();
        let b = qp.alloc_msg_id();
        assert_ne!(a, b);
    }
}
