//! Queue pairs: state machine, work queues, in-flight transfer state, and
//! the RC retransmission (go-back-N) state machine.

use std::collections::{HashMap, VecDeque};

use cord_sim::{SimDuration, SimTime, TimerHandle};

use crate::cc::{CcAlgorithm, Dcqcn};
use crate::cq::Cq;
use crate::types::{NodeId, Opcode, QpNum, QpState, Transport, VerbsError, WrId};
use crate::wqe::{RecvWqe, SendWqe};

/// Sender-side record awaiting an ACK/NAK (RC sends and writes).
#[derive(Debug, Clone)]
pub struct PendingAck {
    pub wr_id: WrId,
    pub signaled: bool,
    pub opcode: Opcode,
    pub byte_len: usize,
}

/// Requester-side record of an outstanding RDMA read.
#[derive(Debug, Clone)]
pub struct PendingRead {
    pub wr_id: WrId,
    pub signaled: bool,
    /// Local landing zone.
    pub addr: u64,
    pub len: usize,
    pub lkey: crate::types::LKey,
    /// Next response fragment expected, when retransmission is armed:
    /// replay duplicates (`<`) and post-loss tails (`>`) are discarded, so
    /// completion fires only after a gap-free pass (the retransmit timer
    /// re-issues the request after a loss).
    pub next_frag: u32,
}

/// RC retransmission knobs (per QP, like `ibv_modify_qp`'s timeout /
/// retry_cnt attributes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetxConfig {
    /// Base retransmit timer period: how long the oldest unacked message
    /// may wait before a go-back-N replay. Must exceed the uncongested
    /// RTT; consecutive unproductive timeouts back off exponentially
    /// (doubling, capped at 64×), which both tolerates congested RTTs and
    /// de-synchronizes the replay storms of QPs sharing a hot port.
    pub timeout: SimDuration,
    /// Timeouts tolerated before the QP errors out with
    /// [`crate::cq::CqeStatus::RetryExcErr`]. ACK progress resets the count.
    pub max_retries: u32,
    /// Base delay before replaying a message the responder RNR-NAKed
    /// (receiver not ready: no receive WQE posted yet). Much shorter than
    /// the loss `timeout` — the application is expected to post a buffer
    /// imminently; consecutive RNR rounds back off exponentially.
    pub rnr_timeout: SimDuration,
    /// RNR NAKs tolerated before the QP errors out with
    /// [`crate::cq::CqeStatus::RnrRetryExceeded`]. ACK progress resets
    /// the count.
    pub max_rnr_retries: u32,
}

impl Default for RetxConfig {
    fn default() -> Self {
        RetxConfig {
            timeout: SimDuration::from_us(200),
            max_retries: 8,
            rnr_timeout: SimDuration::from_us(20),
            max_rnr_retries: 8,
        }
    }
}

impl RetxConfig {
    /// Timer period for the next arm given `retries` consecutive
    /// unproductive timeouts: exponential backoff, capped at 64× base.
    pub fn backoff(&self, retries: u32) -> SimDuration {
        SimDuration::from_ps(self.timeout.as_ps() << retries.min(6))
    }

    /// Replay delay after the `retries`-th consecutive RNR NAK: same
    /// exponential shape as [`RetxConfig::backoff`] on the RNR base.
    pub fn rnr_backoff(&self, retries: u32) -> SimDuration {
        SimDuration::from_ps(self.rnr_timeout.as_ps() << retries.min(6))
    }
}

/// One unacked WQE in the retransmit window.
#[derive(Debug, Clone)]
pub struct RetxEntry {
    pub msg_id: u64,
    /// Snapshot of the WQE for go-back-N replay (payload re-read from
    /// guest memory at replay time, exactly like the original pass).
    pub wqe: SendWqe,
    /// Whether the message has been fully handed to the fabric at least
    /// once — only such entries are replayed (the tail still streaming
    /// through the TX scheduler retransmits on a later round if needed).
    pub sent: bool,
}

/// What the receive path should do with an arriving request packet, as
/// decided by [`Qp::rx_seq_check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxSeq {
    /// In sequence: process normally.
    Accept,
    /// Out of sequence or duplicate: discard. `nak` asks the engine to
    /// send one coalesced sequence NAK for the first missing message.
    Drop { nak: bool },
    /// Duplicate of a fully delivered message: discard but re-ACK (the
    /// original ACK may have been lost).
    DupAck,
}

/// Go-back-N retransmission state for one RC QP (sender and receiver
/// roles), armed by `Nic::set_rc_retx`.
#[derive(Debug)]
pub struct RetxState {
    pub cfg: RetxConfig,
    /// Unacked WQEs in message order (the go-back-N window).
    pub window: VecDeque<RetxEntry>,
    /// Messages queued for replay, consumed by the TX scheduler ahead of
    /// fresh sends.
    pub rtx: VecDeque<u64>,
    /// Pending retransmit timer (tombstone-cancelled on ACK progress).
    pub timer: Option<TimerHandle>,
    /// Consecutive timeouts without ACK progress.
    pub retries: u32,
    /// Consecutive RNR NAKs without ACK progress.
    pub rnr_retries: u32,
    /// Pending RNR backoff timer (cancelled on flush).
    pub rnr_timer: Option<TimerHandle>,
    /// First message to replay when the RNR backoff fires (the message
    /// the responder RNR-NAKed).
    pub rnr_from: u64,
    /// Receiver side: next message id expected to make progress.
    pub expected_msg: u64,
    /// Receiver side: next fragment expected within `expected_msg`.
    pub expected_frag: u32,
    /// One sequence NAK per gap: suppressed until in-order progress.
    pub nak_sent: bool,
    /// Messages queued for replay over the QP's lifetime (diagnostics).
    pub replayed: u64,
}

impl RetxState {
    pub fn new(cfg: RetxConfig) -> RetxState {
        RetxState {
            cfg,
            window: VecDeque::new(),
            rtx: VecDeque::new(),
            timer: None,
            retries: 0,
            rnr_retries: 0,
            rnr_timer: None,
            rnr_from: 0,
            expected_msg: 1,
            expected_frag: 0,
            nak_sent: false,
            replayed: 0,
        }
    }

    /// Queue every fully transmitted unacked message for replay, in
    /// message order. Returns how many were queued.
    pub fn queue_replay(&mut self) -> u64 {
        self.queue_replay_from(0)
    }

    /// [`RetxState::queue_replay`] restricted to messages at or after
    /// `from` — a sequence NAK names the responder's first missing
    /// message, and replaying anything older would only burn bottleneck
    /// bandwidth on duplicates the receiver discards.
    pub fn queue_replay_from(&mut self, from: u64) -> u64 {
        self.rtx.clear();
        let mut n = 0;
        for e in &self.window {
            if e.sent && e.msg_id >= from {
                self.rtx.push_back(e.msg_id);
                n += 1;
            }
        }
        self.replayed += n;
        n
    }

    /// Drop `msg_id` from the window (and any queued replay of it) after
    /// its ACK / read completion. Returns whether it was present.
    pub fn ack(&mut self, msg_id: u64) -> bool {
        let Some(pos) = self.window.iter().position(|e| e.msg_id == msg_id) else {
            return false;
        };
        self.window.remove(pos);
        self.rtx.retain(|&m| m != msg_id);
        self.retries = 0;
        self.rnr_retries = 0;
        true
    }
}

/// Responder-side reassembly of the in-progress inbound send (RC is
/// strictly ordered per QP, so one slot suffices).
#[derive(Clone)]
pub struct RecvAssembly {
    pub msg_id: u64,
    pub wqe: RecvWqe,
    pub received: usize,
    pub total_len: usize,
    /// Landing arena resolved from the receive WQE's lkey.
    pub mem: cord_hw::GuestMem,
}

/// TX progress of the WQE currently being segmented.
#[derive(Clone)]
pub struct TxProgress {
    pub wqe: SendWqe,
    pub msg_id: u64,
    pub next_frag: u32,
    pub nfrags: u32,
    /// Source arena resolved from the WQE's lkey.
    pub mem: cord_hw::GuestMem,
}

/// A queue pair.
pub struct Qp {
    pub num: QpNum,
    pub transport: Transport,
    pub state: QpState,
    pub send_cq: Cq,
    pub recv_cq: Cq,
    /// Connected peer (RC only).
    pub peer: Option<(NodeId, QpNum)>,
    pub sq: VecDeque<SendWqe>,
    pub rq: VecDeque<RecvWqe>,
    pub sq_depth: usize,
    pub rq_depth: usize,
    pub next_msg_id: u64,
    /// The WQE currently being transmitted (burst-resumable).
    pub tx: Option<TxProgress>,
    /// Whether this QP sits in the NIC's round-robin TX ring.
    pub in_ring: bool,
    /// TX stalled on the outstanding-read limit.
    pub stalled_rd: bool,
    pub outstanding_reads: usize,
    pub max_rd_atomic: usize,
    pub pending_acks: HashMap<u64, PendingAck>,
    pub pending_reads: HashMap<u64, PendingRead>,
    pub cur_recv: Option<RecvAssembly>,
    /// Inbound write message currently being dropped after a NAK.
    pub drop_msg: Option<u64>,
    /// DCQCN sender state (`Some` iff the QP's CC knob is `Dcqcn`). On the
    /// receive side its presence also enables CNP echo for marked arrivals.
    pub dcqcn: Option<Dcqcn>,
    /// RC retransmission state (`Some` iff armed via `Nic::set_rc_retx`).
    /// Sender side: unacked window + retransmit timer; receiver side:
    /// in-order sequence tracking and NAK suppression.
    pub retx: Option<RetxState>,
    /// Last CNP echoed from this QP (receiver-side CNP rate limiting).
    pub last_cnp_tx: Option<SimTime>,
    /// Counters for observability (exported by the CoRD stats policy).
    pub tx_msgs: u64,
    pub rx_msgs: u64,
    pub tx_bytes: u64,
    pub rx_bytes: u64,
}

impl Qp {
    pub fn new(
        num: QpNum,
        transport: Transport,
        send_cq: Cq,
        recv_cq: Cq,
        sq_depth: usize,
        rq_depth: usize,
        max_rd_atomic: usize,
    ) -> Self {
        Qp {
            num,
            transport,
            state: QpState::Reset,
            send_cq,
            recv_cq,
            peer: None,
            sq: VecDeque::new(),
            rq: VecDeque::new(),
            sq_depth,
            rq_depth,
            next_msg_id: 1,
            tx: None,
            in_ring: false,
            stalled_rd: false,
            outstanding_reads: 0,
            max_rd_atomic,
            pending_acks: HashMap::new(),
            pending_reads: HashMap::new(),
            cur_recv: None,
            drop_msg: None,
            dcqcn: None,
            retx: None,
            last_cnp_tx: None,
            tx_msgs: 0,
            rx_msgs: 0,
            tx_bytes: 0,
            rx_bytes: 0,
        }
    }

    /// RESET → INIT (`ibv_modify_qp` with pkey/port).
    pub fn to_init(&mut self) -> Result<(), VerbsError> {
        match self.state {
            QpState::Reset => {
                self.state = QpState::Init;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "RESET",
                actual: s,
            }),
        }
    }

    /// INIT → RTR; RC requires the remote endpoint.
    pub fn to_rtr(&mut self, peer: Option<(NodeId, QpNum)>) -> Result<(), VerbsError> {
        match self.state {
            QpState::Init => {
                if self.transport == Transport::Rc && peer.is_none() {
                    return Err(VerbsError::MissingRemoteInfo);
                }
                self.peer = peer;
                self.state = QpState::Rtr;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "INIT",
                actual: s,
            }),
        }
    }

    /// RTR → RTS.
    pub fn to_rts(&mut self) -> Result<(), VerbsError> {
        match self.state {
            QpState::Rtr => {
                self.state = QpState::Rts;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "RTR",
                actual: s,
            }),
        }
    }

    /// Validate and enqueue a send WQE. Does not ring the doorbell.
    pub fn push_send(&mut self, wqe: SendWqe, mtu: usize) -> Result<(), VerbsError> {
        if self.state != QpState::Rts {
            return Err(VerbsError::InvalidState {
                expected: "RTS",
                actual: self.state,
            });
        }
        if self.sq.len() >= self.sq_depth {
            return Err(VerbsError::QueueFull);
        }
        match self.transport {
            Transport::Ud => {
                if wqe.opcode != Opcode::Send {
                    return Err(VerbsError::OpNotSupported {
                        op: wqe.opcode,
                        transport: Transport::Ud,
                    });
                }
                if wqe.sge.len > mtu {
                    return Err(VerbsError::MessageTooLong {
                        len: wqe.sge.len,
                        max: mtu,
                    });
                }
                if wqe.ud_dest.is_none() {
                    return Err(VerbsError::MissingDestination);
                }
            }
            Transport::Rc => {
                if wqe.opcode != Opcode::Send && wqe.remote.is_none() {
                    return Err(VerbsError::MissingRemoteInfo);
                }
            }
        }
        self.sq.push_back(wqe);
        Ok(())
    }

    /// Validate and enqueue a receive WQE.
    pub fn push_recv(&mut self, wqe: RecvWqe) -> Result<(), VerbsError> {
        // Receives may be posted from INIT onwards (IB allows posting in
        // INIT; they only complete once RTR).
        match self.state {
            QpState::Init | QpState::Rtr | QpState::Rts => {}
            s => {
                return Err(VerbsError::InvalidState {
                    expected: "INIT/RTR/RTS",
                    actual: s,
                })
            }
        }
        if self.rq.len() >= self.rq_depth {
            return Err(VerbsError::QueueFull);
        }
        self.rq.push_back(wqe);
        Ok(())
    }

    /// The QP's congestion-control algorithm.
    pub fn cc(&self) -> CcAlgorithm {
        if self.dcqcn.is_some() {
            CcAlgorithm::Dcqcn
        } else {
            CcAlgorithm::None
        }
    }

    pub fn alloc_msg_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    /// Receiver-side go-back-N sequence check for an arriving request
    /// fragment (`frag`/`last` are 0/`true` for single-packet requests
    /// like read requests). No-op ([`RxSeq::Accept`]) unless
    /// retransmission is armed.
    ///
    /// In-sequence arrivals advance the expected position and clear NAK
    /// suppression; a gap (lost fragment or whole message) discards the
    /// arrival, rewinds any partial send reassembly so the replay can
    /// rebind its receive WQE from fragment 0, and asks for one coalesced
    /// sequence NAK naming the first missing message.
    pub fn rx_seq_check(&mut self, msg_id: u64, frag: u32, last: bool) -> RxSeq {
        let Some(rx) = self.retx.as_mut() else {
            return RxSeq::Accept;
        };
        if msg_id < rx.expected_msg {
            // Replay of a message already delivered: its ACK was lost or
            // slow. Re-ACK on the last fragment so the sender's window
            // clears; drop the payload either way.
            return if last {
                RxSeq::DupAck
            } else {
                RxSeq::Drop { nak: false }
            };
        }
        if msg_id > rx.expected_msg || frag > rx.expected_frag {
            // Gap: a whole message or a fragment went missing. Rewind the
            // partial reassembly (the replay restarts at fragment 0) and
            // NAK once per gap episode.
            let nak = !rx.nak_sent;
            rx.nak_sent = true;
            rx.expected_frag = 0;
            if let Some(asm) = self.cur_recv.take() {
                self.rq.push_front(asm.wqe);
            }
            return RxSeq::Drop { nak };
        }
        if frag < rx.expected_frag {
            // Replay duplicate of a fragment already landed; the tail of
            // the replay will line up with `expected_frag`.
            return RxSeq::Drop { nak: false };
        }
        rx.expected_frag += 1;
        rx.nak_sent = false;
        if last {
            rx.expected_msg += 1;
            rx.expected_frag = 0;
        }
        RxSeq::Accept
    }

    /// The first message the receive side is missing (what a sequence NAK
    /// reports). Panics if retransmission is not armed.
    pub fn rx_expected_msg(&self) -> u64 {
        self.retx.as_ref().expect("retx armed").expected_msg
    }

    /// Receiver-side rewind after an RNR NAK for `msg_id`: the arriving
    /// fragment already advanced the expected position in
    /// [`Qp::rx_seq_check`], but its payload was discarded, so the replay
    /// must be re-accepted from fragment 0 of the NAKed message (and its
    /// trailing in-flight fragments dropped rather than DupAcked). Also
    /// suppresses sequence NAKs until in-order progress resumes — the
    /// sender already knows where to restart. No-op when retransmission
    /// is not armed (RNR is then fatal and the QP flushes).
    pub fn rx_rnr_rewind(&mut self, msg_id: u64) {
        if let Some(rx) = self.retx.as_mut() {
            rx.expected_msg = msg_id;
            rx.expected_frag = 0;
            rx.nak_sent = true;
        }
    }

    /// Move to the error state; remaining queued WQEs flush with errors.
    /// Returns the flushed send WQEs (the engine emits flush CQEs).
    pub fn enter_error(&mut self) -> (Vec<SendWqe>, Vec<RecvWqe>) {
        self.state = QpState::Error;
        let sq = self.sq.drain(..).collect();
        let rq = self.rq.drain(..).collect();
        (sq, rq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Cq;
    use crate::types::{CqId, LKey, RKey};
    use crate::wqe::{Sge, UdDest};

    fn mk_qp(t: Transport) -> Qp {
        Qp::new(
            QpNum(1),
            t,
            Cq::new(CqId(0), 64),
            Cq::new(CqId(1), 64),
            4,
            4,
            16,
        )
    }

    fn sge(len: usize) -> Sge {
        Sge {
            addr: 0x1_0000,
            len,
            lkey: LKey(1),
        }
    }

    #[test]
    fn state_machine_happy_path() {
        let mut qp = mk_qp(Transport::Rc);
        assert_eq!(qp.state, QpState::Reset);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        assert_eq!(qp.state, QpState::Rts);
        assert_eq!(qp.peer, Some((1, QpNum(2))));
    }

    #[test]
    fn state_machine_rejects_skips() {
        let mut qp = mk_qp(Transport::Rc);
        assert!(qp.to_rtr(Some((1, QpNum(2)))).is_err());
        assert!(qp.to_rts().is_err());
        qp.to_init().unwrap();
        assert!(qp.to_init().is_err(), "double INIT");
        assert!(qp.to_rts().is_err(), "INIT→RTS skips RTR");
    }

    #[test]
    fn rc_rtr_requires_peer() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        assert_eq!(qp.to_rtr(None), Err(VerbsError::MissingRemoteInfo));
        // UD needs no peer.
        let mut ud = mk_qp(Transport::Ud);
        ud.to_init().unwrap();
        ud.to_rtr(None).unwrap();
    }

    #[test]
    fn post_send_requires_rts() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        let err = qp.push_send(SendWqe::send(WrId(1), sge(16)), 4096);
        assert!(matches!(err, Err(VerbsError::InvalidState { .. })));
    }

    #[test]
    fn sq_depth_enforced() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        for i in 0..4 {
            qp.push_send(SendWqe::send(WrId(i), sge(16)), 4096).unwrap();
        }
        assert_eq!(
            qp.push_send(SendWqe::send(WrId(9), sge(16)), 4096),
            Err(VerbsError::QueueFull)
        );
    }

    #[test]
    fn ud_restrictions() {
        let mut qp = mk_qp(Transport::Ud);
        qp.to_init().unwrap();
        qp.to_rtr(None).unwrap();
        qp.to_rts().unwrap();
        // RDMA ops rejected.
        let w = SendWqe::write(WrId(1), sge(16), 0x2000, RKey(1));
        assert!(matches!(
            qp.push_send(w, 4096),
            Err(VerbsError::OpNotSupported { .. })
        ));
        // Over-MTU rejected.
        let big = SendWqe::send(WrId(2), sge(5000)).with_ud_dest(UdDest {
            node: 1,
            qpn: QpNum(3),
        });
        assert!(matches!(
            qp.push_send(big, 4096),
            Err(VerbsError::MessageTooLong { .. })
        ));
        // Missing destination rejected.
        let nodest = SendWqe::send(WrId(3), sge(64));
        assert_eq!(
            qp.push_send(nodest, 4096),
            Err(VerbsError::MissingDestination)
        );
        // Valid UD send accepted.
        let ok = SendWqe::send(WrId(4), sge(64)).with_ud_dest(UdDest {
            node: 1,
            qpn: QpNum(3),
        });
        qp.push_send(ok, 4096).unwrap();
    }

    #[test]
    fn rc_one_sided_requires_remote() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        let mut w = SendWqe::write(WrId(1), sge(16), 0x2000, RKey(1));
        w.remote = None;
        assert_eq!(qp.push_send(w, 4096), Err(VerbsError::MissingRemoteInfo));
    }

    #[test]
    fn recv_posting_allowed_from_init() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.push_recv(RecvWqe::new(WrId(1), sge(64))).unwrap();
        // But not in RESET.
        let mut fresh = mk_qp(Transport::Rc);
        assert!(fresh.push_recv(RecvWqe::new(WrId(1), sge(64))).is_err());
    }

    #[test]
    fn error_state_flushes_queues() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        qp.push_send(SendWqe::send(WrId(1), sge(16)), 4096).unwrap();
        qp.push_recv(RecvWqe::new(WrId(2), sge(16))).unwrap();
        let (sq, rq) = qp.enter_error();
        assert_eq!(sq.len(), 1);
        assert_eq!(rq.len(), 1);
        assert_eq!(qp.state, QpState::Error);
        assert!(qp.push_send(SendWqe::send(WrId(3), sge(16)), 4096).is_err());
    }

    #[test]
    fn msg_ids_are_unique() {
        let mut qp = mk_qp(Transport::Rc);
        let a = qp.alloc_msg_id();
        let b = qp.alloc_msg_id();
        assert_ne!(a, b);
    }

    fn mk_retx_qp() -> Qp {
        let mut qp = mk_qp(Transport::Rc);
        qp.retx = Some(RetxState::new(RetxConfig::default()));
        qp
    }

    #[test]
    fn rx_seq_accepts_in_order_and_advances() {
        let mut qp = mk_retx_qp();
        // msg 1: three fragments in order, then msg 2 single-fragment.
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 1, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 2, true), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(2, 0, true), RxSeq::Accept);
        assert_eq!(qp.rx_expected_msg(), 3);
        // Without retx armed, everything is accepted untracked.
        let mut plain = mk_qp(Transport::Rc);
        assert_eq!(plain.rx_seq_check(9, 5, false), RxSeq::Accept);
    }

    #[test]
    fn rx_seq_naks_once_per_gap_and_resumes_on_progress() {
        let mut qp = mk_retx_qp();
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Accept);
        // Fragment 1 lost: 2 arrives out of order — one NAK, then silence.
        assert_eq!(qp.rx_seq_check(1, 2, false), RxSeq::Drop { nak: true });
        assert_eq!(qp.rx_seq_check(1, 3, true), RxSeq::Drop { nak: false });
        // Later messages during the same gap stay suppressed too.
        assert_eq!(qp.rx_seq_check(2, 0, true), RxSeq::Drop { nak: false });
        // Go-back-N replay restarts msg 1 from fragment 0 and is accepted;
        // progress re-arms NAK for the next gap.
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 1, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 3, true), RxSeq::Drop { nak: true });
    }

    #[test]
    fn rx_seq_gap_rewinds_partial_reassembly() {
        let mut qp = mk_retx_qp();
        qp.to_init().unwrap();
        // Bind a fake in-progress reassembly for msg 1.
        qp.cur_recv = Some(RecvAssembly {
            msg_id: 1,
            wqe: RecvWqe::new(WrId(77), sge(64)),
            received: 16,
            total_len: 64,
            mem: cord_hw::GuestMem::new(),
        });
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 2, true), RxSeq::Drop { nak: true });
        // The bound receive WQE went back to the front of the RQ so the
        // replay can rebind it from fragment 0.
        assert!(qp.cur_recv.is_none());
        assert_eq!(qp.rq.front().unwrap().wr_id, WrId(77));
    }

    #[test]
    fn rx_seq_duplicates_reack_only_on_last_fragment() {
        let mut qp = mk_retx_qp();
        assert_eq!(qp.rx_seq_check(1, 0, true), RxSeq::Accept);
        // Replay of the delivered message: drop payload, re-ACK at the end.
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Drop { nak: false });
        assert_eq!(qp.rx_seq_check(1, 0, true), RxSeq::DupAck);
        // Replay duplicate of an already-landed fragment inside the
        // current message: silent drop, no rewind.
        assert_eq!(qp.rx_seq_check(2, 0, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(2, 1, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(2, 0, false), RxSeq::Drop { nak: false });
        assert_eq!(qp.rx_seq_check(2, 2, true), RxSeq::Accept);
        assert_eq!(qp.rx_expected_msg(), 3);
    }

    #[test]
    fn retx_window_acks_in_any_order_and_queues_sent_entries() {
        let mut rx = RetxState::new(RetxConfig::default());
        for id in 1..=4u64 {
            rx.window.push_back(RetxEntry {
                msg_id: id,
                wqe: SendWqe::send(WrId(id), sge(64)),
                sent: id <= 3, // msg 4 still streaming
            });
        }
        assert_eq!(rx.queue_replay(), 3, "only fully-sent entries replay");
        assert_eq!(rx.rtx, [1, 2, 3]);
        // ACK for msg 2 (out of order): removed from window and replay
        // queue; retries reset.
        rx.retries = 5;
        assert!(rx.ack(2));
        assert!(!rx.ack(2), "double ACK is a no-op");
        assert_eq!(rx.retries, 0);
        assert_eq!(rx.rtx, [1, 3]);
        assert_eq!(
            rx.window.iter().map(|e| e.msg_id).collect::<Vec<_>>(),
            [1, 3, 4]
        );
        // Replay ordering is message order, regardless of ACK history.
        assert_eq!(rx.queue_replay(), 2);
        assert_eq!(rx.rtx, [1, 3]);
    }
}
