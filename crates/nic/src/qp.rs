//! Queue pairs: state machine, work queues, in-flight transfer state, and
//! the RC retransmission state machines (go-back-N and selective repeat).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

use cord_sim::{SimDuration, SimTime, TimerHandle};

use crate::cc::{CcAlgorithm, Dcqcn};
use crate::cq::Cq;
use crate::types::{NodeId, Opcode, QpNum, QpState, Transport, VerbsError, WrId};
use crate::wqe::{RecvWqe, SendWqe};

/// Sender-side record awaiting an ACK/NAK (RC sends and writes).
#[derive(Debug, Clone)]
pub struct PendingAck {
    pub wr_id: WrId,
    pub signaled: bool,
    pub opcode: Opcode,
    pub byte_len: usize,
}

/// Requester-side record of an outstanding RDMA read.
#[derive(Debug, Clone)]
pub struct PendingRead {
    pub wr_id: WrId,
    pub signaled: bool,
    /// Local landing zone.
    pub addr: u64,
    pub len: usize,
    pub lkey: crate::types::LKey,
    /// Next response fragment expected, when go-back-N retransmission is
    /// armed: replay duplicates (`<`) and post-loss tails (`>`) are
    /// discarded, so completion fires only after a gap-free pass (the
    /// retransmit timer re-issues the request after a loss).
    pub next_frag: u32,
    /// Selective repeat: bitmap of response fragments already landed —
    /// out-of-order responses install directly and the read completes
    /// when the bitmap fills (reads over 64 fragments fall back to the
    /// in-order gate above).
    pub got: u64,
}

/// Loss-recovery discipline for an RC QP with retransmission armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetxMode {
    /// Go-back-N: the receiver accepts only in-order arrivals and the
    /// sender replays the whole unacked window from the first missing
    /// message, re-sending fragments the receiver already holds.
    #[default]
    Gbn,
    /// Selective repeat: the receiver installs out-of-order fragments
    /// through the idempotent `GuestMem::install` patch path, ACKs each
    /// message individually as it completes, and NAKs with a SACK bitmap
    /// so the sender replays only what is actually missing. Required for
    /// per-packet spray routing, which reorders by design.
    Sr,
}

impl fmt::Display for RetxMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RetxMode::Gbn => "gbn",
            RetxMode::Sr => "sr",
        })
    }
}

/// RC retransmission knobs (per QP, like `ibv_modify_qp`'s timeout /
/// retry_cnt attributes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetxConfig {
    /// Loss-recovery discipline: go-back-N (default) or selective repeat.
    pub mode: RetxMode,
    /// Base retransmit timer period: how long the oldest unacked message
    /// may wait before a go-back-N replay. Must exceed the uncongested
    /// RTT; consecutive unproductive timeouts back off exponentially
    /// (doubling, capped at 64×), which both tolerates congested RTTs and
    /// de-synchronizes the replay storms of QPs sharing a hot port.
    pub timeout: SimDuration,
    /// Timeouts tolerated before the QP errors out with
    /// [`crate::cq::CqeStatus::RetryExcErr`]. ACK progress resets the count.
    pub max_retries: u32,
    /// Base delay before replaying a message the responder RNR-NAKed
    /// (receiver not ready: no receive WQE posted yet). Much shorter than
    /// the loss `timeout` — the application is expected to post a buffer
    /// imminently; consecutive RNR rounds back off exponentially.
    pub rnr_timeout: SimDuration,
    /// RNR NAKs tolerated before the QP errors out with
    /// [`crate::cq::CqeStatus::RnrRetryExceeded`]. ACK progress resets
    /// the count.
    pub max_rnr_retries: u32,
}

impl Default for RetxConfig {
    fn default() -> Self {
        RetxConfig {
            mode: RetxMode::Gbn,
            timeout: SimDuration::from_us(200),
            max_retries: 8,
            rnr_timeout: SimDuration::from_us(20),
            max_rnr_retries: 8,
        }
    }
}

impl RetxConfig {
    /// Timer period for the next arm given `retries` consecutive
    /// unproductive timeouts: exponential backoff, capped at 64× base.
    pub fn backoff(&self, retries: u32) -> SimDuration {
        SimDuration::from_ps(self.timeout.as_ps() << retries.min(6))
    }

    /// Replay delay after the `retries`-th consecutive RNR NAK: same
    /// exponential shape as [`RetxConfig::backoff`] on the RNR base.
    pub fn rnr_backoff(&self, retries: u32) -> SimDuration {
        SimDuration::from_ps(self.rnr_timeout.as_ps() << retries.min(6))
    }
}

/// One unacked WQE in the retransmit window.
#[derive(Debug, Clone)]
pub struct RetxEntry {
    pub msg_id: u64,
    /// Snapshot of the WQE for go-back-N replay (payload re-read from
    /// guest memory at replay time, exactly like the original pass).
    pub wqe: SendWqe,
    /// Whether the message has been fully handed to the fabric at least
    /// once — only such entries are replayed (the tail still streaming
    /// through the TX scheduler retransmits on a later round if needed).
    pub sent: bool,
}

/// What the receive path should do with an arriving request packet, as
/// decided by [`Qp::rx_seq_check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxSeq {
    /// In sequence: process normally.
    Accept,
    /// Out of sequence or duplicate: discard. `nak` asks the engine to
    /// send one coalesced sequence NAK for the first missing message.
    Drop { nak: bool },
    /// Duplicate of a fully delivered message: discard but re-ACK (the
    /// original ACK may have been lost).
    DupAck,
}

/// How an arriving request message consumes receiver resources, as far as
/// the selective-repeat window cares: sends bind a receive WQE in strict
/// message order, writes and reads do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrKind {
    Send,
    Write,
    Read,
}

/// What the engine should do with a fragment, per [`SrRxWindow::on_frag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrAction {
    /// Fresh fragment of a live message: install the payload.
    /// `completes` means every fragment of the message has now landed.
    Install { completes: bool },
    /// Send fragment whose message cannot bind a receive WQE yet (an
    /// earlier message is still unclassified or unbound): drop the
    /// payload; SACK-driven replay recovers it.
    Unbound,
    /// Duplicate (or fragment of a poisoned message): drop the payload.
    /// `reack` asks for a duplicate ACK — the original was likely lost.
    Duplicate { reack: bool },
}

/// [`SrRxWindow::on_frag`] verdict plus an optional SACK to emit: the
/// first missing message and the bitmap of its fragments already held
/// (low 64; anything past bit 63 is replayed unconditionally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrDecision {
    pub action: SrAction,
    pub sack: Option<(u64, u64)>,
}

/// Per-message fragment tracking inside the selective-repeat window.
#[derive(Debug, Clone)]
struct SrMsgState {
    kind: SrKind,
    nfrags: u32,
    total_len: usize,
    /// Received-fragment bitmap, 64 fragments per word.
    received: Vec<u64>,
    count: u32,
    /// Sends: whether a receive WQE has been bound (writes/reads: true).
    bound: bool,
    /// Message rejected (length / protection error): drop everything.
    poisoned: bool,
}

/// Receiver-side selective-repeat window: accepts fragments in any order,
/// tracks per-message receive bitmaps, completes messages out of order,
/// and decides when to emit a SACK. Pure state machine — the engine owns
/// WQE binding, memory installs, and packet emission — so it is directly
/// property-testable against a naive model.
#[derive(Debug, Default)]
pub struct SrRxWindow {
    /// Every message below this id is fully delivered.
    expected_msg: u64,
    /// Messages at or above `expected_msg` that completed out of order.
    done: BTreeSet<u64>,
    /// In-progress messages.
    msgs: BTreeMap<u64, SrMsgState>,
    /// Lowest message id not yet resolved for WQE binding: sends bind in
    /// strict message order, so a send can bind only once every earlier
    /// message is delivered, bound, or known not to need a WQE.
    floor: u64,
    /// One SACK per gap episode, cleared when `expected_msg` advances.
    sack_sent: bool,
}

impl SrRxWindow {
    pub fn new() -> SrRxWindow {
        SrRxWindow {
            expected_msg: 1,
            done: BTreeSet::new(),
            msgs: BTreeMap::new(),
            floor: 1,
            sack_sent: false,
        }
    }

    /// Next message id not yet fully delivered.
    pub fn expected_msg(&self) -> u64 {
        self.expected_msg
    }

    /// Whether the window has ever seen (or delivered) `msg_id`.
    pub fn knows(&self, msg_id: u64) -> bool {
        msg_id < self.expected_msg || self.done.contains(&msg_id) || self.msgs.contains_key(&msg_id)
    }

    /// Whether landing `frag` would complete `msg_id` (used by the engine
    /// to pre-check receiver resources before committing the fragment).
    pub fn completes_with(&self, msg_id: u64, frag: u32, nfrags: u32) -> bool {
        match self.msgs.get(&msg_id) {
            Some(m) => {
                m.bound
                    && !m.poisoned
                    && m.count + 1 == m.nfrags
                    && m.received[frag as usize / 64] >> (frag % 64) & 1 == 0
            }
            None => !self.knows(msg_id) && nfrags == 1,
        }
    }

    /// Total length of an in-progress message (recorded from its first
    /// arrived fragment; every fragment carries it on the wire).
    pub fn total_len(&self, msg_id: u64) -> usize {
        self.msgs.get(&msg_id).map_or(0, |m| m.total_len)
    }

    fn lowest_missing(&self, msg_id: u64) -> u32 {
        let Some(m) = self.msgs.get(&msg_id) else {
            return 0;
        };
        for f in 0..m.nfrags {
            if m.received[f as usize / 64] >> (f % 64) & 1 == 0 {
                return f;
            }
        }
        m.nfrags
    }

    fn received_low64(&self, msg_id: u64) -> u64 {
        self.msgs.get(&msg_id).map_or(0, |m| m.received[0])
    }

    /// Process one arriving fragment. Classifies the message on first
    /// contact, tracks the receive bitmap, advances the cumulative
    /// delivery point on completion, and decides whether to SACK: once
    /// per gap episode, when the arrival lands ahead of the first missing
    /// position (a later message, or a fragment past the lowest hole of
    /// the expected message).
    pub fn on_frag(&mut self, msg_id: u64, frag: u32, nfrags: u32, kind: SrKind) -> SrDecision {
        debug_assert!(frag < nfrags);
        if msg_id < self.expected_msg || self.done.contains(&msg_id) {
            return SrDecision {
                action: SrAction::Duplicate {
                    reack: frag + 1 == nfrags,
                },
                sack: None,
            };
        }
        let e = self.msgs.entry(msg_id).or_insert_with(|| SrMsgState {
            kind,
            nfrags,
            total_len: 0,
            received: vec![0; (nfrags as usize).div_ceil(64)],
            count: 0,
            bound: !matches!(kind, SrKind::Send),
            poisoned: false,
        });
        let action = if e.poisoned {
            SrAction::Duplicate { reack: false }
        } else if !e.bound {
            SrAction::Unbound
        } else if e.received[frag as usize / 64] >> (frag % 64) & 1 == 1 {
            SrAction::Duplicate { reack: false }
        } else {
            e.received[frag as usize / 64] |= 1 << (frag % 64);
            e.count += 1;
            if e.count == e.nfrags {
                self.msgs.remove(&msg_id);
                self.done.insert(msg_id);
                let before = self.expected_msg;
                while self.done.remove(&self.expected_msg) {
                    self.expected_msg += 1;
                }
                if self.expected_msg > before {
                    self.sack_sent = false;
                }
                if self.floor < self.expected_msg {
                    self.floor = self.expected_msg;
                }
                SrAction::Install { completes: true }
            } else {
                SrAction::Install { completes: false }
            }
        };
        let gap = msg_id > self.expected_msg
            || (msg_id == self.expected_msg && frag > self.lowest_missing(msg_id));
        let sack = if gap && !self.sack_sent && !matches!(action, SrAction::Duplicate { .. }) {
            self.sack_sent = true;
            Some((self.expected_msg, self.received_low64(self.expected_msg)))
        } else {
            None
        };
        SrDecision { action, sack }
    }

    /// Record the total message length from a fragment header (idempotent;
    /// the engine calls this so WQE binding can length-check the message
    /// even when fragment 0 has not arrived).
    pub fn note_total_len(&mut self, msg_id: u64, total_len: usize) {
        if let Some(m) = self.msgs.get_mut(&msg_id) {
            m.total_len = total_len;
        }
    }

    /// The next send message ready to bind a receive WQE, if any: the
    /// binding floor advances over delivered / bound / poisoned messages
    /// and stalls on the first unclassified gap (replay fills it) or the
    /// first unbound send (which this returns).
    pub fn next_bind(&mut self) -> Option<u64> {
        loop {
            if self.floor < self.expected_msg {
                self.floor = self.expected_msg;
                continue;
            }
            if self.done.contains(&self.floor) {
                self.floor += 1;
                continue;
            }
            match self.msgs.get(&self.floor) {
                Some(m) if m.bound || m.poisoned => {
                    self.floor += 1;
                    continue;
                }
                Some(m) => {
                    debug_assert!(matches!(m.kind, SrKind::Send));
                    return Some(self.floor);
                }
                None => return None,
            }
        }
    }

    /// Mark a send message as having bound its receive WQE.
    pub fn bound(&mut self, msg_id: u64) {
        if let Some(m) = self.msgs.get_mut(&msg_id) {
            m.bound = true;
        }
    }

    /// Reject a message (length / protection error): all of its fragments
    /// drop silently from now on and it never blocks the binding floor.
    pub fn poison(&mut self, msg_id: u64, nfrags: u32, kind: SrKind) {
        let e = self.msgs.entry(msg_id).or_insert_with(|| SrMsgState {
            kind,
            nfrags,
            total_len: 0,
            received: vec![0; (nfrags as usize).div_ceil(64)],
            count: 0,
            bound: !matches!(kind, SrKind::Send),
            poisoned: true,
        });
        e.poisoned = true;
    }
}

/// Go-back-N retransmission state for one RC QP (sender and receiver
/// roles), armed by `Nic::set_rc_retx`.
#[derive(Debug)]
pub struct RetxState {
    pub cfg: RetxConfig,
    /// Unacked WQEs in message order (the go-back-N window).
    pub window: VecDeque<RetxEntry>,
    /// Messages queued for replay, consumed by the TX scheduler ahead of
    /// fresh sends.
    pub rtx: VecDeque<u64>,
    /// Pending retransmit timer (tombstone-cancelled on ACK progress).
    pub timer: Option<TimerHandle>,
    /// Consecutive timeouts without ACK progress.
    pub retries: u32,
    /// Consecutive RNR NAKs without ACK progress.
    pub rnr_retries: u32,
    /// Pending RNR backoff timer (cancelled on flush).
    pub rnr_timer: Option<TimerHandle>,
    /// First message to replay when the RNR backoff fires (the message
    /// the responder RNR-NAKed).
    pub rnr_from: u64,
    /// Receiver side: next message id expected to make progress.
    pub expected_msg: u64,
    /// Receiver side: next fragment expected within `expected_msg`.
    pub expected_frag: u32,
    /// One sequence NAK per gap: suppressed until in-order progress.
    pub nak_sent: bool,
    /// Messages queued for replay over the QP's lifetime (diagnostics).
    pub replayed: u64,
    /// Sender side, selective repeat: per-message bitmaps of fragments
    /// the receiver SACKed as already held — skipped on replay. Bits are
    /// sticky-correct (an installed fragment never un-installs), so stale
    /// masks can only suppress redundant traffic, never lose data.
    pub rtx_mask: HashMap<u64, u64>,
    /// Receiver side, selective repeat: the out-of-order receive window.
    /// Unused (empty) in go-back-N mode.
    pub sr: SrRxWindow,
}

impl RetxState {
    pub fn new(cfg: RetxConfig) -> RetxState {
        RetxState {
            cfg,
            window: VecDeque::new(),
            rtx: VecDeque::new(),
            timer: None,
            retries: 0,
            rnr_retries: 0,
            rnr_timer: None,
            rnr_from: 0,
            expected_msg: 1,
            expected_frag: 0,
            nak_sent: false,
            replayed: 0,
            rtx_mask: HashMap::new(),
            sr: SrRxWindow::new(),
        }
    }

    /// Queue every fully transmitted unacked message for replay, in
    /// message order. Returns how many were queued.
    pub fn queue_replay(&mut self) -> u64 {
        self.queue_replay_from(0)
    }

    /// [`RetxState::queue_replay`] restricted to messages at or after
    /// `from` — a sequence NAK names the responder's first missing
    /// message, and replaying anything older would only burn bottleneck
    /// bandwidth on duplicates the receiver discards.
    pub fn queue_replay_from(&mut self, from: u64) -> u64 {
        self.rtx.clear();
        let mut n = 0;
        for e in &self.window {
            if e.sent && e.msg_id >= from {
                self.rtx.push_back(e.msg_id);
                n += 1;
            }
        }
        self.replayed += n;
        n
    }

    /// Drop `msg_id` from the window (and any queued replay of it) after
    /// its ACK / read completion. Returns whether it was present.
    pub fn ack(&mut self, msg_id: u64) -> bool {
        let Some(pos) = self.window.iter().position(|e| e.msg_id == msg_id) else {
            return false;
        };
        self.window.remove(pos);
        self.rtx.retain(|&m| m != msg_id);
        self.rtx_mask.remove(&msg_id);
        self.retries = 0;
        self.rnr_retries = 0;
        true
    }
}

/// Responder-side reassembly of the in-progress inbound send (RC is
/// strictly ordered per QP, so one slot suffices).
#[derive(Clone)]
pub struct RecvAssembly {
    pub msg_id: u64,
    pub wqe: RecvWqe,
    pub received: usize,
    pub total_len: usize,
    /// Landing arena resolved from the receive WQE's lkey.
    pub mem: cord_hw::GuestMem,
}

/// TX progress of the WQE currently being segmented.
#[derive(Clone)]
pub struct TxProgress {
    pub wqe: SendWqe,
    pub msg_id: u64,
    pub next_frag: u32,
    pub nfrags: u32,
    /// Source arena resolved from the WQE's lkey.
    pub mem: cord_hw::GuestMem,
    /// Selective-repeat replay: bitmap of fragments the receiver SACKed
    /// as already held — the segmenter skips them (0 on first passes and
    /// in go-back-N mode; fragments ≥ 64 always transmit).
    pub skip: u64,
}

/// A queue pair.
pub struct Qp {
    pub num: QpNum,
    pub transport: Transport,
    pub state: QpState,
    pub send_cq: Cq,
    pub recv_cq: Cq,
    /// Connected peer (RC only).
    pub peer: Option<(NodeId, QpNum)>,
    pub sq: VecDeque<SendWqe>,
    pub rq: VecDeque<RecvWqe>,
    pub sq_depth: usize,
    pub rq_depth: usize,
    pub next_msg_id: u64,
    /// The WQE currently being transmitted (burst-resumable).
    pub tx: Option<TxProgress>,
    /// Whether this QP sits in the NIC's round-robin TX ring.
    pub in_ring: bool,
    /// TX stalled on the outstanding-read limit.
    pub stalled_rd: bool,
    pub outstanding_reads: usize,
    pub max_rd_atomic: usize,
    pub pending_acks: HashMap<u64, PendingAck>,
    pub pending_reads: HashMap<u64, PendingRead>,
    pub cur_recv: Option<RecvAssembly>,
    /// Selective repeat: concurrent inbound send reassemblies keyed by
    /// message id (out-of-order arrival means several can be open at
    /// once). Go-back-N uses the single `cur_recv` slot instead.
    pub sr_recv: BTreeMap<u64, RecvAssembly>,
    /// Inbound write message currently being dropped after a NAK.
    pub drop_msg: Option<u64>,
    /// DCQCN sender state (`Some` iff the QP's CC knob is `Dcqcn`). On the
    /// receive side its presence also enables CNP echo for marked arrivals.
    pub dcqcn: Option<Dcqcn>,
    /// RC retransmission state (`Some` iff armed via `Nic::set_rc_retx`).
    /// Sender side: unacked window + retransmit timer; receiver side:
    /// in-order sequence tracking and NAK suppression.
    pub retx: Option<RetxState>,
    /// Last CNP echoed from this QP (receiver-side CNP rate limiting).
    pub last_cnp_tx: Option<SimTime>,
    /// Counters for observability (exported by the CoRD stats policy).
    pub tx_msgs: u64,
    pub rx_msgs: u64,
    pub tx_bytes: u64,
    pub rx_bytes: u64,
}

impl Qp {
    pub fn new(
        num: QpNum,
        transport: Transport,
        send_cq: Cq,
        recv_cq: Cq,
        sq_depth: usize,
        rq_depth: usize,
        max_rd_atomic: usize,
    ) -> Self {
        Qp {
            num,
            transport,
            state: QpState::Reset,
            send_cq,
            recv_cq,
            peer: None,
            sq: VecDeque::new(),
            rq: VecDeque::new(),
            sq_depth,
            rq_depth,
            next_msg_id: 1,
            tx: None,
            in_ring: false,
            stalled_rd: false,
            outstanding_reads: 0,
            max_rd_atomic,
            pending_acks: HashMap::new(),
            pending_reads: HashMap::new(),
            cur_recv: None,
            sr_recv: BTreeMap::new(),
            drop_msg: None,
            dcqcn: None,
            retx: None,
            last_cnp_tx: None,
            tx_msgs: 0,
            rx_msgs: 0,
            tx_bytes: 0,
            rx_bytes: 0,
        }
    }

    /// RESET → INIT (`ibv_modify_qp` with pkey/port).
    pub fn to_init(&mut self) -> Result<(), VerbsError> {
        match self.state {
            QpState::Reset => {
                self.state = QpState::Init;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "RESET",
                actual: s,
            }),
        }
    }

    /// INIT → RTR; RC requires the remote endpoint.
    pub fn to_rtr(&mut self, peer: Option<(NodeId, QpNum)>) -> Result<(), VerbsError> {
        match self.state {
            QpState::Init => {
                if self.transport == Transport::Rc && peer.is_none() {
                    return Err(VerbsError::MissingRemoteInfo);
                }
                self.peer = peer;
                self.state = QpState::Rtr;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "INIT",
                actual: s,
            }),
        }
    }

    /// RTR → RTS.
    pub fn to_rts(&mut self) -> Result<(), VerbsError> {
        match self.state {
            QpState::Rtr => {
                self.state = QpState::Rts;
                Ok(())
            }
            s => Err(VerbsError::InvalidState {
                expected: "RTR",
                actual: s,
            }),
        }
    }

    /// Validate and enqueue a send WQE. Does not ring the doorbell.
    pub fn push_send(&mut self, wqe: SendWqe, mtu: usize) -> Result<(), VerbsError> {
        if self.state != QpState::Rts {
            return Err(VerbsError::InvalidState {
                expected: "RTS",
                actual: self.state,
            });
        }
        if self.sq.len() >= self.sq_depth {
            return Err(VerbsError::QueueFull);
        }
        match self.transport {
            Transport::Ud => {
                if wqe.opcode != Opcode::Send {
                    return Err(VerbsError::OpNotSupported {
                        op: wqe.opcode,
                        transport: Transport::Ud,
                    });
                }
                if wqe.sge.len > mtu {
                    return Err(VerbsError::MessageTooLong {
                        len: wqe.sge.len,
                        max: mtu,
                    });
                }
                if wqe.ud_dest.is_none() {
                    return Err(VerbsError::MissingDestination);
                }
            }
            Transport::Rc => {
                if wqe.opcode != Opcode::Send && wqe.remote.is_none() {
                    return Err(VerbsError::MissingRemoteInfo);
                }
            }
        }
        self.sq.push_back(wqe);
        Ok(())
    }

    /// Validate and enqueue a receive WQE.
    pub fn push_recv(&mut self, wqe: RecvWqe) -> Result<(), VerbsError> {
        // Receives may be posted from INIT onwards (IB allows posting in
        // INIT; they only complete once RTR).
        match self.state {
            QpState::Init | QpState::Rtr | QpState::Rts => {}
            s => {
                return Err(VerbsError::InvalidState {
                    expected: "INIT/RTR/RTS",
                    actual: s,
                })
            }
        }
        if self.rq.len() >= self.rq_depth {
            return Err(VerbsError::QueueFull);
        }
        self.rq.push_back(wqe);
        Ok(())
    }

    /// The QP's congestion-control algorithm.
    pub fn cc(&self) -> CcAlgorithm {
        if self.dcqcn.is_some() {
            CcAlgorithm::Dcqcn
        } else {
            CcAlgorithm::None
        }
    }

    pub fn alloc_msg_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    /// Receiver-side go-back-N sequence check for an arriving request
    /// fragment (`frag`/`last` are 0/`true` for single-packet requests
    /// like read requests). No-op ([`RxSeq::Accept`]) unless
    /// retransmission is armed.
    ///
    /// In-sequence arrivals advance the expected position and clear NAK
    /// suppression; a gap (lost fragment or whole message) discards the
    /// arrival, rewinds any partial send reassembly so the replay can
    /// rebind its receive WQE from fragment 0, and asks for one coalesced
    /// sequence NAK naming the first missing message.
    pub fn rx_seq_check(&mut self, msg_id: u64, frag: u32, last: bool) -> RxSeq {
        let Some(rx) = self.retx.as_mut() else {
            return RxSeq::Accept;
        };
        if msg_id < rx.expected_msg {
            // Replay of a message already delivered: its ACK was lost or
            // slow. Re-ACK on the last fragment so the sender's window
            // clears; drop the payload either way.
            return if last {
                RxSeq::DupAck
            } else {
                RxSeq::Drop { nak: false }
            };
        }
        if msg_id > rx.expected_msg || frag > rx.expected_frag {
            // Gap: a whole message or a fragment went missing. Rewind the
            // partial reassembly (the replay restarts at fragment 0) and
            // NAK once per gap episode.
            let nak = !rx.nak_sent;
            rx.nak_sent = true;
            rx.expected_frag = 0;
            if let Some(asm) = self.cur_recv.take() {
                self.rq.push_front(asm.wqe);
            }
            return RxSeq::Drop { nak };
        }
        if frag < rx.expected_frag {
            // Replay duplicate of a fragment already landed; the tail of
            // the replay will line up with `expected_frag`.
            return RxSeq::Drop { nak: false };
        }
        rx.expected_frag += 1;
        rx.nak_sent = false;
        if last {
            rx.expected_msg += 1;
            rx.expected_frag = 0;
        }
        RxSeq::Accept
    }

    /// The first message the receive side is missing (what a sequence NAK
    /// reports). Panics if retransmission is not armed.
    pub fn rx_expected_msg(&self) -> u64 {
        self.retx.as_ref().expect("retx armed").expected_msg
    }

    /// Receiver-side rewind after an RNR NAK for `msg_id`: the arriving
    /// fragment already advanced the expected position in
    /// [`Qp::rx_seq_check`], but its payload was discarded, so the replay
    /// must be re-accepted from fragment 0 of the NAKed message (and its
    /// trailing in-flight fragments dropped rather than DupAcked). Also
    /// suppresses sequence NAKs until in-order progress resumes — the
    /// sender already knows where to restart. No-op when retransmission
    /// is not armed (RNR is then fatal and the QP flushes).
    pub fn rx_rnr_rewind(&mut self, msg_id: u64) {
        if let Some(rx) = self.retx.as_mut() {
            rx.expected_msg = msg_id;
            rx.expected_frag = 0;
            rx.nak_sent = true;
        }
    }

    /// Move to the error state; remaining queued WQEs flush with errors.
    /// Returns the flushed send WQEs (the engine emits flush CQEs).
    pub fn enter_error(&mut self) -> (Vec<SendWqe>, Vec<RecvWqe>) {
        self.state = QpState::Error;
        let sq = self.sq.drain(..).collect();
        let rq = self.rq.drain(..).collect();
        (sq, rq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Cq;
    use crate::types::{CqId, LKey, RKey};
    use crate::wqe::{Sge, UdDest};

    fn mk_qp(t: Transport) -> Qp {
        Qp::new(
            QpNum(1),
            t,
            Cq::new(CqId(0), 64),
            Cq::new(CqId(1), 64),
            4,
            4,
            16,
        )
    }

    fn sge(len: usize) -> Sge {
        Sge {
            addr: 0x1_0000,
            len,
            lkey: LKey(1),
        }
    }

    #[test]
    fn state_machine_happy_path() {
        let mut qp = mk_qp(Transport::Rc);
        assert_eq!(qp.state, QpState::Reset);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        assert_eq!(qp.state, QpState::Rts);
        assert_eq!(qp.peer, Some((1, QpNum(2))));
    }

    #[test]
    fn state_machine_rejects_skips() {
        let mut qp = mk_qp(Transport::Rc);
        assert!(qp.to_rtr(Some((1, QpNum(2)))).is_err());
        assert!(qp.to_rts().is_err());
        qp.to_init().unwrap();
        assert!(qp.to_init().is_err(), "double INIT");
        assert!(qp.to_rts().is_err(), "INIT→RTS skips RTR");
    }

    #[test]
    fn rc_rtr_requires_peer() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        assert_eq!(qp.to_rtr(None), Err(VerbsError::MissingRemoteInfo));
        // UD needs no peer.
        let mut ud = mk_qp(Transport::Ud);
        ud.to_init().unwrap();
        ud.to_rtr(None).unwrap();
    }

    #[test]
    fn post_send_requires_rts() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        let err = qp.push_send(SendWqe::send(WrId(1), sge(16)), 4096);
        assert!(matches!(err, Err(VerbsError::InvalidState { .. })));
    }

    #[test]
    fn sq_depth_enforced() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        for i in 0..4 {
            qp.push_send(SendWqe::send(WrId(i), sge(16)), 4096).unwrap();
        }
        assert_eq!(
            qp.push_send(SendWqe::send(WrId(9), sge(16)), 4096),
            Err(VerbsError::QueueFull)
        );
    }

    #[test]
    fn ud_restrictions() {
        let mut qp = mk_qp(Transport::Ud);
        qp.to_init().unwrap();
        qp.to_rtr(None).unwrap();
        qp.to_rts().unwrap();
        // RDMA ops rejected.
        let w = SendWqe::write(WrId(1), sge(16), 0x2000, RKey(1));
        assert!(matches!(
            qp.push_send(w, 4096),
            Err(VerbsError::OpNotSupported { .. })
        ));
        // Over-MTU rejected.
        let big = SendWqe::send(WrId(2), sge(5000)).with_ud_dest(UdDest {
            node: 1,
            qpn: QpNum(3),
        });
        assert!(matches!(
            qp.push_send(big, 4096),
            Err(VerbsError::MessageTooLong { .. })
        ));
        // Missing destination rejected.
        let nodest = SendWqe::send(WrId(3), sge(64));
        assert_eq!(
            qp.push_send(nodest, 4096),
            Err(VerbsError::MissingDestination)
        );
        // Valid UD send accepted.
        let ok = SendWqe::send(WrId(4), sge(64)).with_ud_dest(UdDest {
            node: 1,
            qpn: QpNum(3),
        });
        qp.push_send(ok, 4096).unwrap();
    }

    #[test]
    fn rc_one_sided_requires_remote() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        let mut w = SendWqe::write(WrId(1), sge(16), 0x2000, RKey(1));
        w.remote = None;
        assert_eq!(qp.push_send(w, 4096), Err(VerbsError::MissingRemoteInfo));
    }

    #[test]
    fn recv_posting_allowed_from_init() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.push_recv(RecvWqe::new(WrId(1), sge(64))).unwrap();
        // But not in RESET.
        let mut fresh = mk_qp(Transport::Rc);
        assert!(fresh.push_recv(RecvWqe::new(WrId(1), sge(64))).is_err());
    }

    #[test]
    fn error_state_flushes_queues() {
        let mut qp = mk_qp(Transport::Rc);
        qp.to_init().unwrap();
        qp.to_rtr(Some((1, QpNum(2)))).unwrap();
        qp.to_rts().unwrap();
        qp.push_send(SendWqe::send(WrId(1), sge(16)), 4096).unwrap();
        qp.push_recv(RecvWqe::new(WrId(2), sge(16))).unwrap();
        let (sq, rq) = qp.enter_error();
        assert_eq!(sq.len(), 1);
        assert_eq!(rq.len(), 1);
        assert_eq!(qp.state, QpState::Error);
        assert!(qp.push_send(SendWqe::send(WrId(3), sge(16)), 4096).is_err());
    }

    #[test]
    fn msg_ids_are_unique() {
        let mut qp = mk_qp(Transport::Rc);
        let a = qp.alloc_msg_id();
        let b = qp.alloc_msg_id();
        assert_ne!(a, b);
    }

    fn mk_retx_qp() -> Qp {
        let mut qp = mk_qp(Transport::Rc);
        qp.retx = Some(RetxState::new(RetxConfig::default()));
        qp
    }

    #[test]
    fn rx_seq_accepts_in_order_and_advances() {
        let mut qp = mk_retx_qp();
        // msg 1: three fragments in order, then msg 2 single-fragment.
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 1, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 2, true), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(2, 0, true), RxSeq::Accept);
        assert_eq!(qp.rx_expected_msg(), 3);
        // Without retx armed, everything is accepted untracked.
        let mut plain = mk_qp(Transport::Rc);
        assert_eq!(plain.rx_seq_check(9, 5, false), RxSeq::Accept);
    }

    #[test]
    fn rx_seq_naks_once_per_gap_and_resumes_on_progress() {
        let mut qp = mk_retx_qp();
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Accept);
        // Fragment 1 lost: 2 arrives out of order — one NAK, then silence.
        assert_eq!(qp.rx_seq_check(1, 2, false), RxSeq::Drop { nak: true });
        assert_eq!(qp.rx_seq_check(1, 3, true), RxSeq::Drop { nak: false });
        // Later messages during the same gap stay suppressed too.
        assert_eq!(qp.rx_seq_check(2, 0, true), RxSeq::Drop { nak: false });
        // Go-back-N replay restarts msg 1 from fragment 0 and is accepted;
        // progress re-arms NAK for the next gap.
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 1, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 3, true), RxSeq::Drop { nak: true });
    }

    #[test]
    fn rx_seq_gap_rewinds_partial_reassembly() {
        let mut qp = mk_retx_qp();
        qp.to_init().unwrap();
        // Bind a fake in-progress reassembly for msg 1.
        qp.cur_recv = Some(RecvAssembly {
            msg_id: 1,
            wqe: RecvWqe::new(WrId(77), sge(64)),
            received: 16,
            total_len: 64,
            mem: cord_hw::GuestMem::new(),
        });
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(1, 2, true), RxSeq::Drop { nak: true });
        // The bound receive WQE went back to the front of the RQ so the
        // replay can rebind it from fragment 0.
        assert!(qp.cur_recv.is_none());
        assert_eq!(qp.rq.front().unwrap().wr_id, WrId(77));
    }

    #[test]
    fn rx_seq_duplicates_reack_only_on_last_fragment() {
        let mut qp = mk_retx_qp();
        assert_eq!(qp.rx_seq_check(1, 0, true), RxSeq::Accept);
        // Replay of the delivered message: drop payload, re-ACK at the end.
        assert_eq!(qp.rx_seq_check(1, 0, false), RxSeq::Drop { nak: false });
        assert_eq!(qp.rx_seq_check(1, 0, true), RxSeq::DupAck);
        // Replay duplicate of an already-landed fragment inside the
        // current message: silent drop, no rewind.
        assert_eq!(qp.rx_seq_check(2, 0, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(2, 1, false), RxSeq::Accept);
        assert_eq!(qp.rx_seq_check(2, 0, false), RxSeq::Drop { nak: false });
        assert_eq!(qp.rx_seq_check(2, 2, true), RxSeq::Accept);
        assert_eq!(qp.rx_expected_msg(), 3);
    }

    #[test]
    fn retx_window_acks_in_any_order_and_queues_sent_entries() {
        let mut rx = RetxState::new(RetxConfig::default());
        for id in 1..=4u64 {
            rx.window.push_back(RetxEntry {
                msg_id: id,
                wqe: SendWqe::send(WrId(id), sge(64)),
                sent: id <= 3, // msg 4 still streaming
            });
        }
        assert_eq!(rx.queue_replay(), 3, "only fully-sent entries replay");
        assert_eq!(rx.rtx, [1, 2, 3]);
        // ACK for msg 2 (out of order): removed from window and replay
        // queue; retries reset.
        rx.retries = 5;
        assert!(rx.ack(2));
        assert!(!rx.ack(2), "double ACK is a no-op");
        assert_eq!(rx.retries, 0);
        assert_eq!(rx.rtx, [1, 3]);
        assert_eq!(
            rx.window.iter().map(|e| e.msg_id).collect::<Vec<_>>(),
            [1, 3, 4]
        );
        // Replay ordering is message order, regardless of ACK history.
        assert_eq!(rx.queue_replay(), 2);
        assert_eq!(rx.rtx, [1, 3]);
    }

    #[test]
    fn sr_window_accepts_out_of_order_and_completes() {
        let mut w = SrRxWindow::new();
        // Writes need no WQE binding: fragments land in any order.
        let d = w.on_frag(1, 2, 3, SrKind::Write);
        assert_eq!(d.action, SrAction::Install { completes: false });
        // Arrival past the first hole of the expected message → SACK
        // naming msg 1 with bit 2 set.
        assert_eq!(d.sack, Some((1, 0b100)));
        let d = w.on_frag(1, 0, 3, SrKind::Write);
        assert_eq!(d.action, SrAction::Install { completes: false });
        assert_eq!(d.sack, None, "one SACK per gap episode");
        let d = w.on_frag(1, 1, 3, SrKind::Write);
        assert_eq!(d.action, SrAction::Install { completes: true });
        assert_eq!(w.expected_msg(), 2);
        // Message 3 completes before message 2: delivery point holds.
        assert_eq!(
            w.on_frag(3, 0, 1, SrKind::Write).action,
            SrAction::Install { completes: true }
        );
        assert_eq!(w.expected_msg(), 2);
        assert_eq!(
            w.on_frag(2, 0, 1, SrKind::Write).action,
            SrAction::Install { completes: true }
        );
        assert_eq!(w.expected_msg(), 4, "delivery point jumps over done msgs");
    }

    #[test]
    fn sr_window_duplicates_reack_only_on_last_fragment() {
        let mut w = SrRxWindow::new();
        assert_eq!(
            w.on_frag(1, 0, 2, SrKind::Write).action,
            SrAction::Install { completes: false }
        );
        // Same fragment again: silent drop.
        assert_eq!(
            w.on_frag(1, 0, 2, SrKind::Write).action,
            SrAction::Duplicate { reack: false }
        );
        assert_eq!(
            w.on_frag(1, 1, 2, SrKind::Write).action,
            SrAction::Install { completes: true }
        );
        // Replay of the delivered message: re-ACK only on its last frag.
        assert_eq!(
            w.on_frag(1, 0, 2, SrKind::Write).action,
            SrAction::Duplicate { reack: false }
        );
        assert_eq!(
            w.on_frag(1, 1, 2, SrKind::Write).action,
            SrAction::Duplicate { reack: true }
        );
    }

    #[test]
    fn sr_window_binds_sends_in_message_order() {
        let mut w = SrRxWindow::new();
        // Msg 2's fragment arrives before anything of msg 1: it cannot
        // bind (msg 1 unclassified), so the payload drops.
        assert_eq!(w.on_frag(2, 0, 2, SrKind::Send).action, SrAction::Unbound);
        assert_eq!(w.next_bind(), None, "floor stalls on unclassified msg 1");
        // Msg 1 turns out to be a write: the floor advances and msg 2
        // becomes bindable.
        assert_eq!(
            w.on_frag(1, 0, 1, SrKind::Write).action,
            SrAction::Install { completes: true }
        );
        assert_eq!(w.next_bind(), Some(2));
        w.bound(2);
        assert_eq!(w.next_bind(), None);
        // Bound now: the retried fragment installs.
        assert_eq!(
            w.on_frag(2, 0, 2, SrKind::Send).action,
            SrAction::Install { completes: false }
        );
        assert_eq!(
            w.on_frag(2, 1, 2, SrKind::Send).action,
            SrAction::Install { completes: true }
        );
        assert_eq!(w.expected_msg(), 3);
    }

    #[test]
    fn sr_window_poisoned_messages_drop_and_skip_floor() {
        let mut w = SrRxWindow::new();
        w.poison(1, 2, SrKind::Send);
        assert_eq!(w.next_bind(), None, "poisoned send never binds");
        assert_eq!(
            w.on_frag(1, 0, 2, SrKind::Send).action,
            SrAction::Duplicate { reack: false }
        );
        // A later send is still bindable: the floor skips the poisoned msg.
        assert_eq!(w.on_frag(2, 0, 1, SrKind::Send).action, SrAction::Unbound);
        assert_eq!(w.next_bind(), Some(2));
    }

    #[test]
    fn sr_window_sack_carries_expected_msg_bitmap() {
        let mut w = SrRxWindow::new();
        // Msg 1 partially lands, then msg 2 arrives: the SACK names msg 1
        // (first missing) with its received bitmap.
        assert_eq!(w.on_frag(1, 0, 4, SrKind::Write).sack, None);
        assert_eq!(w.on_frag(1, 3, 4, SrKind::Write).sack, Some((1, 0b1001)));
        // Suppressed until progress...
        assert_eq!(w.on_frag(2, 0, 1, SrKind::Write).sack, None);
        assert_eq!(w.on_frag(1, 1, 4, SrKind::Write).sack, None);
        // ...completing msg 1 advances the point and re-arms the SACK.
        let d = w.on_frag(1, 2, 4, SrKind::Write);
        assert_eq!(d.action, SrAction::Install { completes: true });
        assert_eq!(w.expected_msg(), 3);
        let d = w.on_frag(4, 0, 1, SrKind::Write);
        assert_eq!(d.action, SrAction::Install { completes: true });
        assert_eq!(d.sack, Some((3, 0)), "never-seen msg SACKs an empty bitmap");
    }
}
