//! Completion queues.
//!
//! A CQ buffers CQEs written by the NIC. Two consumption styles, matching
//! the paper's taxonomy (§2):
//! * **polling** — the consumer repeatedly calls `poll`; the NIC still
//!   signals each push ([`Cq::wait_push`]) so simulated pollers can park
//!   instead of spinning through virtual time (the detection-granularity
//!   cost is billed by the verbs layer).
//! * **events** — the consumer arms the CQ ([`Cq::arm`]) and blocks on the
//!   completion channel; the next CQE raises a (simulated) interrupt.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use cord_sim::sync::Notify;

use crate::types::{CqId, Opcode, QpNum, WrId};

/// Completion status (subset of `ibv_wc_status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeStatus {
    Success,
    /// Local memory protection violation (bad lkey/range).
    LocalProtErr,
    /// Responder reported a remote access error (bad rkey/range/perm).
    RemoteAccessErr,
    /// Receiver had no receive WQE posted (RNR retries exhausted).
    RnrRetryExceeded,
    /// Transport retries exhausted: the RC retransmit timer fired more
    /// than `max_retries` times without an ACK (`IBV_WC_RETRY_EXC_ERR`).
    RetryExcErr,
    /// WQE flushed because the QP entered the error state.
    WrFlushErr,
}

impl CqeStatus {
    pub fn is_ok(self) -> bool {
        self == CqeStatus::Success
    }
}

/// What completed (subset of `ibv_wc_opcode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeOpcode {
    Send,
    RdmaWrite,
    RdmaRead,
    Recv,
    RecvWithImm,
}

impl From<Opcode> for CqeOpcode {
    fn from(op: Opcode) -> Self {
        match op {
            Opcode::Send => CqeOpcode::Send,
            Opcode::RdmaWrite => CqeOpcode::RdmaWrite,
            Opcode::RdmaRead => CqeOpcode::RdmaRead,
        }
    }
}

/// A completion-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct Cqe {
    pub wr_id: WrId,
    pub status: CqeStatus,
    pub opcode: CqeOpcode,
    /// Bytes transferred (receive: message length).
    pub byte_len: usize,
    /// QP this completion belongs to.
    pub qp: QpNum,
    /// Immediate data, if any.
    pub imm: Option<u32>,
    /// Source QP for UD receives.
    pub src_qp: Option<QpNum>,
    /// Source node for UD receives (the GRH's source GID in real IB).
    pub src_node: Option<usize>,
}

struct Inner {
    queue: VecDeque<Cqe>,
    capacity: usize,
    /// CQEs dropped due to overflow (a fatal condition on real hardware;
    /// we count it and tests assert it stays zero).
    overflows: u64,
}

/// A completion queue; cheap to clone.
#[derive(Clone)]
pub struct Cq {
    pub id: CqId,
    inner: Rc<RefCell<Inner>>,
    /// Fires on every push (pollers park on this instead of spinning).
    push_notify: Notify,
    /// Event channel: fires once per arm when armed.
    event_notify: Notify,
    armed: Rc<Cell<bool>>,
}

impl Cq {
    pub fn new(id: CqId, capacity: usize) -> Self {
        Cq {
            id,
            inner: Rc::new(RefCell::new(Inner {
                queue: VecDeque::new(),
                capacity,
                overflows: 0,
            })),
            push_notify: Notify::new(),
            event_notify: Notify::new(),
            armed: Rc::new(Cell::new(false)),
        }
    }

    /// NIC-side: append a CQE.
    pub fn push(&self, cqe: Cqe) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.queue.len() >= inner.capacity {
                inner.overflows += 1;
                return;
            }
            inner.queue.push_back(cqe);
        }
        self.push_notify.notify_one();
        if self.armed.replace(false) {
            self.event_notify.notify_one();
        }
    }

    /// Consumer-side: pop up to `max` CQEs (free of simulated cost; the
    /// caller bills per-poll and per-CQE CPU time).
    pub fn poll(&self, max: usize) -> Vec<Cqe> {
        let mut inner = self.inner.borrow_mut();
        let n = max.min(inner.queue.len());
        inner.queue.drain(..n).collect()
    }

    /// Pop one CQE if present.
    pub fn poll_one(&self) -> Option<Cqe> {
        self.inner.borrow_mut().queue.pop_front()
    }

    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn overflows(&self) -> u64 {
        self.inner.borrow().overflows
    }

    /// Park until the next push (used by simulated busy-pollers).
    pub async fn wait_push(&self) {
        self.push_notify.notified().await;
    }

    /// Arm the CQ for one event notification (`ibv_req_notify_cq`).
    pub fn arm(&self) {
        self.armed.set(true);
        // Doorbell race: if a CQE is already pending, fire immediately
        // (matches `ibv_req_notify_cq` + recheck semantics).
        if !self.is_empty() && self.armed.replace(false) {
            self.event_notify.notify_one();
        }
    }

    /// Block until the armed event fires (`ibv_get_cq_event`).
    pub async fn wait_event(&self) {
        self.event_notify.notified().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_sim::Sim;

    fn cqe(wr: u64) -> Cqe {
        Cqe {
            wr_id: WrId(wr),
            status: CqeStatus::Success,
            opcode: CqeOpcode::Send,
            byte_len: 0,
            qp: QpNum(1),
            imm: None,
            src_qp: None,
            src_node: None,
        }
    }

    #[test]
    fn fifo_poll_order() {
        let cq = Cq::new(CqId(0), 16);
        for i in 0..5 {
            cq.push(cqe(i));
        }
        let got = cq.poll(3);
        assert_eq!(got.iter().map(|c| c.wr_id.0).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(cq.len(), 2);
        assert_eq!(cq.poll_one().unwrap().wr_id.0, 3);
    }

    #[test]
    fn overflow_is_counted_not_panicking() {
        let cq = Cq::new(CqId(0), 2);
        cq.push(cqe(0));
        cq.push(cqe(1));
        cq.push(cqe(2));
        assert_eq!(cq.len(), 2);
        assert_eq!(cq.overflows(), 1);
    }

    #[test]
    fn wait_push_parks_until_cqe() {
        let sim = Sim::new();
        let cq = Cq::new(CqId(0), 16);
        let cq2 = cq.clone();
        let s = sim.clone();
        let t = sim.block_on(async move {
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(cord_sim::SimDuration::from_us(4)).await;
                cq2.push(cqe(7));
            });
            cq.wait_push().await;
            (s.now(), cq.poll_one().unwrap().wr_id.0)
        });
        assert_eq!(t.0.as_us_f64(), 4.0);
        assert_eq!(t.1, 7);
    }

    #[test]
    fn armed_event_fires_once() {
        let sim = Sim::new();
        let cq = Cq::new(CqId(0), 16);
        sim.block_on({
            let cq = cq.clone();
            async move {
                cq.arm();
                cq.push(cqe(1));
                cq.wait_event().await; // fires
                cq.push(cqe(2)); // not armed: no second event
                assert_eq!(cq.len(), 2);
            }
        });
    }

    #[test]
    fn arm_with_pending_cqe_fires_immediately() {
        let sim = Sim::new();
        let cq = Cq::new(CqId(0), 16);
        sim.block_on({
            let cq = cq.clone();
            async move {
                cq.push(cqe(1));
                cq.arm(); // must not lose the event
                cq.wait_event().await;
            }
        });
    }
}
