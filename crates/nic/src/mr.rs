//! Memory-region table with lkey/rkey protection.
//!
//! The paper relies on this NIC property (§4): "If the application passes an
//! invalid address, the NIC returns an error but does not access any memory
//! that was not explicitly provided to the application." Every DMA the
//! engine performs goes through [`MrTable::check_local`] /
//! [`MrTable::check_remote`] first; a failed check produces an error
//! completion and touches no guest memory.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use cord_hw::{GuestMem, MemRegion};

use crate::types::{Access, LKey, RKey};

/// Why an MR check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrError {
    UnknownKey,
    OutOfRange,
    AccessViolation,
}

/// One registered memory region.
#[derive(Clone)]
pub struct Mr {
    pub lkey: LKey,
    pub rkey: RKey,
    pub region: MemRegion,
    pub access: Access,
    /// The owning process's memory arena; DMA resolves through this.
    pub mem: GuestMem,
}

impl Mr {
    fn covers(&self, addr: u64, len: usize) -> bool {
        addr >= self.region.addr && addr + len as u64 <= self.region.end()
    }
}

#[derive(Default)]
struct Inner {
    by_lkey: HashMap<u32, Mr>,
    by_rkey: HashMap<u32, u32>, // rkey -> lkey
    next_key: u32,
}

/// Per-NIC registry of memory regions.
#[derive(Clone, Default)]
pub struct MrTable {
    inner: Rc<RefCell<Inner>>,
}

impl MrTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `region` of `mem` with the given permissions.
    pub fn register(&self, mem: GuestMem, region: MemRegion, access: Access) -> Mr {
        let mut inner = self.inner.borrow_mut();
        inner.next_key += 1;
        let lkey = inner.next_key;
        inner.next_key += 1;
        let rkey = inner.next_key;
        let mr = Mr {
            lkey: LKey(lkey),
            rkey: RKey(rkey),
            region,
            access,
            mem,
        };
        inner.by_lkey.insert(lkey, mr.clone());
        inner.by_rkey.insert(rkey, lkey);
        mr
    }

    /// Deregister by lkey. Returns whether the MR existed.
    pub fn deregister(&self, lkey: LKey) -> bool {
        let mut inner = self.inner.borrow_mut();
        if let Some(mr) = inner.by_lkey.remove(&lkey.0) {
            inner.by_rkey.remove(&mr.rkey.0);
            true
        } else {
            false
        }
    }

    /// Validate a local access (TX payload fetch needs no flag; RX landing
    /// needs LOCAL_WRITE).
    pub fn check_local(
        &self,
        lkey: LKey,
        addr: u64,
        len: usize,
        write: bool,
    ) -> Result<Mr, MrError> {
        let inner = self.inner.borrow();
        let mr = inner.by_lkey.get(&lkey.0).ok_or(MrError::UnknownKey)?;
        if !mr.covers(addr, len) {
            return Err(MrError::OutOfRange);
        }
        if write && !mr.access.contains(Access::LOCAL_WRITE) {
            return Err(MrError::AccessViolation);
        }
        Ok(mr.clone())
    }

    /// Validate a remote access (RDMA read needs REMOTE_READ, write needs
    /// REMOTE_WRITE).
    pub fn check_remote(
        &self,
        rkey: RKey,
        addr: u64,
        len: usize,
        write: bool,
    ) -> Result<Mr, MrError> {
        let inner = self.inner.borrow();
        let lkey = inner.by_rkey.get(&rkey.0).ok_or(MrError::UnknownKey)?;
        let mr = inner.by_lkey.get(lkey).ok_or(MrError::UnknownKey)?;
        if !mr.covers(addr, len) {
            return Err(MrError::OutOfRange);
        }
        let need = if write {
            Access::REMOTE_WRITE
        } else {
            Access::REMOTE_READ
        };
        if !mr.access.contains(need) {
            return Err(MrError::AccessViolation);
        }
        Ok(mr.clone())
    }

    pub fn len(&self) -> usize {
        self.inner.borrow().by_lkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MrTable, GuestMem, Mr) {
        let t = MrTable::new();
        let mem = GuestMem::new();
        let r = mem.alloc(4096, 0);
        let mr = t.register(mem.clone(), r, Access::all());
        (t, mem, mr)
    }

    #[test]
    fn register_and_check_in_range() {
        let (t, _mem, mr) = setup();
        assert!(t.check_local(mr.lkey, mr.region.addr, 4096, true).is_ok());
        assert!(t
            .check_local(mr.lkey, mr.region.addr + 100, 100, false)
            .is_ok());
        assert!(t.check_remote(mr.rkey, mr.region.addr, 1, true).is_ok());
    }

    #[test]
    fn out_of_range_is_rejected() {
        let (t, _mem, mr) = setup();
        assert_eq!(
            t.check_local(mr.lkey, mr.region.addr, 4097, false).err(),
            Some(MrError::OutOfRange)
        );
        assert_eq!(
            t.check_remote(mr.rkey, mr.region.addr + 4000, 200, false)
                .err(),
            Some(MrError::OutOfRange)
        );
        // Address below the region.
        assert_eq!(
            t.check_local(mr.lkey, mr.region.addr - 1, 1, false).err(),
            Some(MrError::OutOfRange)
        );
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let (t, _mem, mr) = setup();
        assert_eq!(
            t.check_local(LKey(9999), mr.region.addr, 1, false).err(),
            Some(MrError::UnknownKey)
        );
        assert_eq!(
            t.check_remote(RKey(9999), mr.region.addr, 1, false).err(),
            Some(MrError::UnknownKey)
        );
        // lkey and rkey namespaces are distinct: an lkey value is not an rkey.
        assert_eq!(
            t.check_remote(RKey(mr.lkey.0), mr.region.addr, 1, false)
                .err(),
            Some(MrError::UnknownKey)
        );
    }

    #[test]
    fn permissions_are_enforced() {
        let t = MrTable::new();
        let mem = GuestMem::new();
        let r = mem.alloc(128, 0);
        let mr = t.register(mem.clone(), r, Access::LOCAL_WRITE);
        // No remote permissions at all.
        assert_eq!(
            t.check_remote(mr.rkey, r.addr, 8, false).err(),
            Some(MrError::AccessViolation)
        );
        assert_eq!(
            t.check_remote(mr.rkey, r.addr, 8, true).err(),
            Some(MrError::AccessViolation)
        );
        // Read-only remote region rejects writes.
        let r2 = mem.alloc(128, 0);
        let mr2 = t.register(
            mem.clone(),
            r2,
            Access::LOCAL_WRITE.union(Access::REMOTE_READ),
        );
        assert!(t.check_remote(mr2.rkey, r2.addr, 8, false).is_ok());
        assert_eq!(
            t.check_remote(mr2.rkey, r2.addr, 8, true).err(),
            Some(MrError::AccessViolation)
        );
        // A region without LOCAL_WRITE cannot be a receive buffer.
        let r3 = mem.alloc(128, 0);
        let mr3 = t.register(mem, r3, Access::default());
        assert_eq!(
            t.check_local(mr3.lkey, r3.addr, 8, true).err(),
            Some(MrError::AccessViolation)
        );
        assert!(t.check_local(mr3.lkey, r3.addr, 8, false).is_ok());
    }

    #[test]
    fn deregister_invalidates_both_keys() {
        let (t, _mem, mr) = setup();
        assert!(t.deregister(mr.lkey));
        assert!(!t.deregister(mr.lkey), "double dereg");
        assert_eq!(
            t.check_local(mr.lkey, mr.region.addr, 1, false).err(),
            Some(MrError::UnknownKey)
        );
        assert_eq!(
            t.check_remote(mr.rkey, mr.region.addr, 1, false).err(),
            Some(MrError::UnknownKey)
        );
        assert!(t.is_empty());
    }

    #[test]
    fn keys_are_unique_across_registrations() {
        let t = MrTable::new();
        let mem = GuestMem::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let r = mem.alloc(16, 0);
            let mr = t.register(mem.clone(), r, Access::all());
            assert!(seen.insert(mr.lkey.0));
            assert!(seen.insert(mr.rkey.0));
        }
    }
}
