//! Identifiers, transports, opcodes, access flags, and error types shared
//! across the NIC model.

use std::fmt;

/// Queue-pair number, unique per NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpNum(pub u32);

/// Completion-queue id, unique per NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CqId(pub u32);

/// Local memory key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LKey(pub u32);

/// Remote memory key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RKey(pub u32);

/// Caller-chosen work-request id, returned in the CQE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WrId(pub u64);

/// Address of a NIC in the fabric (node index).
pub type NodeId = usize;

/// IB transport service types used by the paper (§5: RC and UD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Reliable Connection: ordered, acked, supports one-sided ops.
    Rc,
    /// Unreliable Datagram: single-MTU messages, no acks, send/recv only.
    Ud,
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transport::Rc => write!(f, "RC"),
            Transport::Ud => write!(f, "UD"),
        }
    }
}

/// Send-side operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Two-sided send (consumes a receive WQE at the responder).
    Send,
    /// One-sided write into remote memory (optionally with immediate).
    RdmaWrite,
    /// One-sided read from remote memory.
    RdmaRead,
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::Send => write!(f, "Send"),
            Opcode::RdmaWrite => write!(f, "Write"),
            Opcode::RdmaRead => write!(f, "Read"),
        }
    }
}

/// Memory-region access permissions (subset of `ibv_access_flags`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access(pub u8);

impl Access {
    pub const LOCAL_WRITE: Access = Access(1);
    pub const REMOTE_READ: Access = Access(2);
    pub const REMOTE_WRITE: Access = Access(4);

    /// Everything; the common perftest registration.
    pub fn all() -> Access {
        Access(1 | 2 | 4)
    }

    pub fn local_only() -> Access {
        Access::LOCAL_WRITE
    }

    pub fn contains(self, other: Access) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn union(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }
}

/// QP state machine states (subset of the IB spec's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    Reset,
    Init,
    /// Ready to receive.
    Rtr,
    /// Ready to send (fully operational).
    Rts,
    /// Fatal error: all further work requests complete with flush errors.
    Error,
}

/// Errors returned synchronously by verb calls (not via CQEs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbsError {
    /// QP is in the wrong state for this operation.
    InvalidState {
        expected: &'static str,
        actual: QpState,
    },
    /// Send/recv queue is full.
    QueueFull,
    /// Unknown object id.
    UnknownQp(QpNum),
    UnknownCq(CqId),
    /// Message exceeds the transport's limit (UD: one MTU).
    MessageTooLong {
        len: usize,
        max: usize,
    },
    /// Operation not supported on this transport (e.g. RDMA on UD).
    OpNotSupported {
        op: Opcode,
        transport: Transport,
    },
    /// The lkey does not exist or does not cover the posted range.
    InvalidLKey,
    /// Missing remote address/rkey for a one-sided op.
    MissingRemoteInfo,
    /// Missing destination for a UD send.
    MissingDestination,
    /// Denied by a CoRD policy (kernel interposition).
    PolicyDenied(&'static str),
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::InvalidState { expected, actual } => {
                write!(f, "invalid QP state: expected {expected}, got {actual:?}")
            }
            VerbsError::QueueFull => write!(f, "work queue full"),
            VerbsError::UnknownQp(q) => write!(f, "unknown QP {q:?}"),
            VerbsError::UnknownCq(c) => write!(f, "unknown CQ {c:?}"),
            VerbsError::MessageTooLong { len, max } => {
                write!(f, "message of {len} B exceeds transport max {max} B")
            }
            VerbsError::OpNotSupported { op, transport } => {
                write!(f, "{op} not supported on {transport}")
            }
            VerbsError::InvalidLKey => write!(f, "invalid lkey or range"),
            VerbsError::MissingRemoteInfo => write!(f, "one-sided op without remote addr/rkey"),
            VerbsError::MissingDestination => write!(f, "UD send without destination"),
            VerbsError::PolicyDenied(p) => write!(f, "denied by CoRD policy: {p}"),
        }
    }
}

impl std::error::Error for VerbsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_flag_algebra() {
        let a = Access::LOCAL_WRITE.union(Access::REMOTE_READ);
        assert!(a.contains(Access::LOCAL_WRITE));
        assert!(a.contains(Access::REMOTE_READ));
        assert!(!a.contains(Access::REMOTE_WRITE));
        assert!(Access::all().contains(a));
        assert!(!Access::default().contains(Access::LOCAL_WRITE));
    }

    #[test]
    fn displays_are_compact() {
        assert_eq!(Transport::Rc.to_string(), "RC");
        assert_eq!(Opcode::RdmaRead.to_string(), "Read");
        assert_eq!(
            format!(
                "{}",
                VerbsError::MessageTooLong {
                    len: 5000,
                    max: 4096
                }
            ),
            "message of 5000 B exceeds transport max 4096 B"
        );
    }
}
