//! The NIC engine: TX scheduler, RX pipeline, and DMA orchestration.
//!
//! ## TX path
//! `post_send` validates and enqueues the WQE, then rings the doorbell
//! (a [`Notify`]). A single TX scheduler task round-robins across QPs with
//! pending work at *burst* granularity (up to [`TX_BURST`] fragments), so a
//! multi-megabyte message cannot head-of-line-block other QPs — matching how
//! ConnectX hardware interleaves QP schedules.
//!
//! Each fragment's payload is fetched by DMA ([`DmaEngine::enqueue`], FIFO,
//! pipelined) and the frame enters the fabric when the fetch completes. A
//! window semaphore bounds in-flight fragments so the scheduler paces at
//! the bottleneck (DMA or wire) rate instead of queueing unboundedly.
//!
//! ## RX path
//! A single RX task serializes per-packet processing, validates memory
//! access (MR table), lands payloads via DMA, and generates CQEs/ACKs *at
//! the DMA completion instant* — data is visible in memory before its
//! completion, the ordering RDMA applications rely on.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use cord_hw::link::Frame;
use cord_hw::PayloadSeg;
use cord_hw::{DmaDir, DmaEngine, MachineSpec};
use cord_net::Network;
use cord_sim::sync::{Notify, Receiver, Semaphore};
use cord_sim::{FifoResource, Sim, SimDuration, SimTime, Subsystem, Trace, TraceKind};

use crate::cc::{CcAlgorithm, Dcqcn, CNP_MIN_INTERVAL};
use crate::cq::{Cq, Cqe, CqeOpcode, CqeStatus};
use crate::mr::{MrError, MrTable};
use crate::packet::{NakReason, Packet, PacketKind};
use crate::qp::{
    PendingAck, PendingRead, Qp, RecvAssembly, RetxConfig, RetxEntry, RetxMode, RetxState, RxSeq,
    SrAction, SrKind, TxProgress,
};
use crate::types::{CqId, NodeId, Opcode, QpNum, QpState, Transport, VerbsError};
use crate::wqe::{RecvWqe, SendWqe};

/// Max fragments a QP may transmit before yielding to the round-robin ring.
pub const TX_BURST: u32 = 32;

/// Max in-flight (DMA-fetched but not yet on the wire) TX fragments.
pub const TX_WINDOW: usize = 64;

pub(crate) struct NicInner {
    sim: Sim,
    pub node: NodeId,
    pub spec: MachineSpec,
    fabric: Rc<Network<Packet>>,
    rx: RefCell<Option<Receiver<Frame<Packet>>>>,
    /// QP table indexed by QPN (QPNs are dense, starting at 1; index 0 is
    /// permanently vacant). A direct index beats a hash on the per-packet
    /// path.
    qps: RefCell<Vec<Option<Rc<RefCell<Qp>>>>>,
    next_qpn: Cell<u32>,
    next_cq: Cell<u32>,
    pub mrs: MrTable,
    pub dma: DmaEngine,
    tx_pipeline: FifoResource,
    rx_pipeline: FifoResource,
    tx_ring: RefCell<VecDeque<QpNum>>,
    tx_notify: Notify,
    tx_window: Semaphore,
    started: Cell<bool>,
    trace: Trace,
    /// Packets handled by the RX pipeline (diagnostics).
    rx_packets: Cell<u64>,
    /// Messages queued for go-back-N replay across all QPs (diagnostics).
    retx_replays: Cell<u64>,
    /// QPs errored out after exhausting their retransmit budget.
    retx_exhausted: Cell<u64>,
    /// Pipeline slowdown factor (chaos straggler injection): every per-WQE
    /// and per-packet processing cost is multiplied by this. 1.0 (the
    /// default) is bit-identical to an unscaled pipeline.
    slowdown: Cell<f64>,
}

/// A simulated RDMA NIC. Cheap to clone.
#[derive(Clone)]
pub struct Nic {
    inner: Rc<NicInner>,
}

impl Nic {
    pub fn new(
        sim: &Sim,
        spec: &MachineSpec,
        node: NodeId,
        fabric: Rc<Network<Packet>>,
        rx: Receiver<Frame<Packet>>,
        trace: Trace,
    ) -> Self {
        let nic = Nic {
            inner: Rc::new(NicInner {
                sim: sim.clone(),
                node,
                spec: spec.clone(),
                fabric,
                rx: RefCell::new(Some(rx)),
                qps: RefCell::new(vec![None]),
                next_qpn: Cell::new(0),
                next_cq: Cell::new(0),
                mrs: MrTable::new(),
                dma: DmaEngine::new(sim, spec.pcie.clone()),
                tx_pipeline: FifoResource::new(sim),
                rx_pipeline: FifoResource::new(sim),
                tx_ring: RefCell::new(VecDeque::new()),
                tx_notify: Notify::new(),
                tx_window: Semaphore::new(TX_WINDOW),
                started: Cell::new(false),
                trace,
                rx_packets: Cell::new(0),
                retx_replays: Cell::new(0),
                retx_exhausted: Cell::new(0),
                slowdown: Cell::new(1.0),
            }),
        };
        nic.start();
        nic
    }

    /// Spawn the TX and RX tasks (idempotent). Both carry the
    /// [`Subsystem::NicEngine`] tag, so their polls — and every timer they
    /// schedule (DMA completions, retransmit timers, pacing gates) — land
    /// in the NIC bucket of [`cord_sim::SimStats`].
    fn start(&self) {
        if self.inner.started.replace(true) {
            return;
        }
        let sim = self.inner.sim.clone();
        sim.with_tag(Subsystem::NicEngine, || {
            let tx_inner = Rc::clone(&self.inner);
            self.inner.sim.spawn(async move {
                tx_loop(tx_inner).await;
            });
            let rx_inner = Rc::clone(&self.inner);
            self.inner.sim.spawn(async move {
                rx_loop(rx_inner).await;
            });
        });
    }

    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    pub fn spec(&self) -> &MachineSpec {
        &self.inner.spec
    }

    pub fn mr_table(&self) -> &MrTable {
        &self.inner.mrs
    }

    pub fn rx_packets(&self) -> u64 {
        self.inner.rx_packets.get()
    }

    /// Create a completion queue.
    pub fn create_cq(&self, capacity: usize) -> Cq {
        let id = self.inner.next_cq.get();
        self.inner.next_cq.set(id + 1);
        Cq::new(CqId(id), capacity)
    }

    /// Create a queue pair in the RESET state.
    pub fn create_qp(&self, transport: Transport, send_cq: Cq, recv_cq: Cq) -> QpNum {
        let n = self.inner.next_qpn.get() + 1;
        self.inner.next_qpn.set(n);
        let qpn = QpNum(n);
        let qp = Qp::new(
            qpn,
            transport,
            send_cq,
            recv_cq,
            self.inner.spec.nic.sq_depth,
            self.inner.spec.nic.rq_depth,
            self.inner.spec.nic.max_rd_atomic,
        );
        let mut qps = self.inner.qps.borrow_mut();
        debug_assert_eq!(qps.len(), n as usize);
        qps.push(Some(Rc::new(RefCell::new(qp))));
        qpn
    }

    fn qp(&self, qpn: QpNum) -> Result<Rc<RefCell<Qp>>, VerbsError> {
        self.inner.qp_rc(qpn).ok_or(VerbsError::UnknownQp(qpn))
    }

    /// Full RESET→INIT→RTR→RTS transition (the common CM handshake result).
    pub fn connect(&self, qpn: QpNum, peer: Option<(NodeId, QpNum)>) -> Result<(), VerbsError> {
        let qp = self.qp(qpn)?;
        let mut qp = qp.borrow_mut();
        qp.to_init()?;
        qp.to_rtr(peer)?;
        qp.to_rts()
    }

    /// Individual state transitions (for tests of the state machine).
    pub fn modify_to_init(&self, qpn: QpNum) -> Result<(), VerbsError> {
        self.qp(qpn)?.borrow_mut().to_init()
    }

    pub fn modify_to_rtr(
        &self,
        qpn: QpNum,
        peer: Option<(NodeId, QpNum)>,
    ) -> Result<(), VerbsError> {
        self.qp(qpn)?.borrow_mut().to_rtr(peer)
    }

    pub fn modify_to_rts(&self, qpn: QpNum) -> Result<(), VerbsError> {
        self.qp(qpn)?.borrow_mut().to_rts()
    }

    pub fn qp_state(&self, qpn: QpNum) -> Result<QpState, VerbsError> {
        Ok(self.qp(qpn)?.borrow().state)
    }

    pub fn qp_transport(&self, qpn: QpNum) -> Result<Transport, VerbsError> {
        Ok(self.qp(qpn)?.borrow().transport)
    }

    /// Select the QP's congestion-control algorithm. For
    /// [`CcAlgorithm::Dcqcn`] this arms the sender-side rate limiter at
    /// line rate *and* enables receiver-side CNP echo for ECN-marked
    /// arrivals; [`CcAlgorithm::None`] restores the seed's uncontrolled
    /// behavior.
    ///
    /// DCQCN is an RC mechanism (as on real RoCE NICs): on a UD QP the
    /// knob is accepted but inert — UD receivers never echo CNPs, so UD
    /// traffic is never throttled.
    pub fn set_cc(&self, qpn: QpNum, alg: CcAlgorithm) -> Result<(), VerbsError> {
        let qp = self.qp(qpn)?;
        let mut qp = qp.borrow_mut();
        qp.dcqcn = match alg {
            CcAlgorithm::None => None,
            CcAlgorithm::Dcqcn => Some(Dcqcn::new(self.inner.spec.link.gbps, self.inner.sim.now())),
        };
        Ok(())
    }

    pub fn qp_cc(&self, qpn: QpNum) -> Result<CcAlgorithm, VerbsError> {
        Ok(self.qp(qpn)?.borrow().cc())
    }

    /// Arm (or disarm, with `None`) RC retransmission on a QP: a go-back-N
    /// unacked window with a per-QP retransmit timer on the sender side,
    /// and in-order sequence tracking with coalesced sequence NAKs on the
    /// receiver side. Like the DCQCN knob it must be set symmetrically on
    /// both ends of a connection before traffic flows, and like DCQCN it
    /// is accepted but inert on UD QPs (datagrams have no ACK protocol to
    /// retransmit from).
    pub fn set_rc_retx(&self, qpn: QpNum, cfg: Option<RetxConfig>) -> Result<(), VerbsError> {
        let qp = self.qp(qpn)?;
        let mut qp = qp.borrow_mut();
        if qp.transport != Transport::Rc {
            return Ok(());
        }
        // Arming after traffic has flowed cannot work: pre-arm messages
        // are outside the window and the fresh receiver sequence state
        // misaligns with the peer's message ids — a silent deadlock.
        // Reject it like any out-of-order `ibv_modify_qp`.
        if cfg.is_some()
            && (qp.next_msg_id > 1
                || qp.rx_msgs > 0
                || qp.tx.is_some()
                || qp.cur_recv.is_some()
                || !qp.sr_recv.is_empty())
        {
            return Err(VerbsError::InvalidState {
                expected: "no prior traffic (arm retransmission at connect)",
                actual: qp.state,
            });
        }
        if let Some(rx) = qp.retx.take() {
            if let Some(h) = rx.timer {
                self.inner.sim.cancel_scheduled(h);
            }
        }
        qp.retx = cfg.map(RetxState::new);
        Ok(())
    }

    /// Whether RC retransmission is armed on a QP.
    pub fn qp_retx(&self, qpn: QpNum) -> Result<bool, VerbsError> {
        Ok(self.qp(qpn)?.borrow().retx.is_some())
    }

    /// `(messages queued for replay, QPs that exhausted their retry
    /// budget)` across this NIC's lifetime.
    pub fn retx_stats(&self) -> (u64, u64) {
        (
            self.inner.retx_replays.get(),
            self.inner.retx_exhausted.get(),
        )
    }

    /// Snapshot of a DCQCN QP's `(rate_gbps, cnps, cuts)` (diagnostics).
    pub fn dcqcn_snapshot(&self, qpn: QpNum) -> Result<Option<(f64, u64, u64)>, VerbsError> {
        Ok(self
            .qp(qpn)?
            .borrow()
            .dcqcn
            .as_ref()
            .map(|d| (d.rate_gbps, d.cnps, d.cuts)))
    }

    /// The network this NIC transmits through (topology + port stats).
    pub fn network(&self) -> Rc<Network<Packet>> {
        Rc::clone(&self.inner.fabric)
    }

    /// The shared trace sink this NIC (and the whole cluster it was built
    /// with) emits lifecycle events into.
    pub fn trace(&self) -> Trace {
        self.inner.trace.clone()
    }

    /// Scale every per-WQE and per-packet pipeline cost by `factor`
    /// (chaos straggler-NIC injection). `factor` ≥ 1 slows the NIC's
    /// processing pipelines without touching wire rates; 1.0 restores the
    /// healthy, bit-identical behavior. Takes effect on the next pipeline
    /// use — costs already in flight keep their original duration.
    pub fn set_slowdown(&self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "slowdown factor must be positive and finite"
        );
        self.inner.slowdown.set(factor);
    }

    /// (tx_msgs, rx_msgs, tx_bytes, rx_bytes) counters for a QP.
    pub fn qp_counters(&self, qpn: QpNum) -> Result<(u64, u64, u64, u64), VerbsError> {
        let qp = self.qp(qpn)?;
        let qp = qp.borrow();
        Ok((qp.tx_msgs, qp.rx_msgs, qp.tx_bytes, qp.rx_bytes))
    }

    /// Post a send work request and ring the doorbell. CPU-side costs
    /// (WQE build, MMIO write) are billed by the calling driver layer.
    pub fn post_send(
        &self,
        qpn: QpNum,
        mut wqe: SendWqe,
        inline_allowed: bool,
    ) -> Result<(), VerbsError> {
        let qp_rc = self.qp(qpn)?;
        {
            let mut qp = qp_rc.borrow_mut();
            // Capture inline payload at post time if the driver requested it
            // and the NIC supports it at this size.
            if inline_allowed
                && wqe.opcode == Opcode::Send
                && wqe.sge.len <= self.inner.spec.nic.inline_cap
            {
                if let Ok(mr) =
                    self.inner
                        .mrs
                        .check_local(wqe.sge.lkey, wqe.sge.addr, wqe.sge.len, false)
                {
                    if let Ok(data) = mr.mem.read(wqe.sge.addr, wqe.sge.len) {
                        wqe.inline_data = Some(data);
                    }
                }
            }
            let (wr_id, bytes) = (wqe.wr_id.0, wqe.sge.len as u32);
            qp.push_send(wqe, self.inner.spec.nic.mtu)?;
            self.inner.trace.emit(
                self.inner.sim.now(),
                TraceKind::WqeStart {
                    node: self.inner.node as u32,
                    qpn: qpn.0,
                    wr_id,
                    bytes,
                },
            );
        }
        self.ring(qpn);
        Ok(())
    }

    /// Post a receive work request.
    pub fn post_recv(&self, qpn: QpNum, wqe: RecvWqe) -> Result<(), VerbsError> {
        let qp_rc = self.qp(qpn)?;
        let result = qp_rc.borrow_mut().push_recv(wqe);
        result
    }

    /// Add a QP to the TX ring if it is not there already.
    fn ring(&self, qpn: QpNum) {
        ring_qp(&self.inner, qpn);
    }

    /// Test/diagnostic access to the raw QP (crate-internal).
    #[doc(hidden)]
    pub fn qp_handle(&self, qpn: QpNum) -> Option<Rc<RefCell<Qp>>> {
        self.inner.qp_rc(qpn)
    }
}

impl NicInner {
    #[inline]
    fn qp_rc(&self, qpn: QpNum) -> Option<Rc<RefCell<Qp>>> {
        self.qps.borrow().get(qpn.0 as usize)?.clone()
    }

    /// Pipeline occupancy for `ns` nanoseconds of nominal processing cost,
    /// scaled by the straggler slowdown factor.
    #[inline]
    fn pipe_cost(&self, ns: f64) -> SimDuration {
        SimDuration::from_ns_f64(ns * self.slowdown.get())
    }
}

fn ring_qp(inner: &Rc<NicInner>, qpn: QpNum) {
    let Some(qp_rc) = inner.qp_rc(qpn) else {
        return;
    };
    let mut qp = qp_rc.borrow_mut();
    if !qp.in_ring {
        qp.in_ring = true;
        inner.tx_ring.borrow_mut().push_back(qpn);
        inner.tx_notify.notify_one();
    }
}

fn transmit(inner: &Rc<NicInner>, pkt: Packet) {
    let wire = pkt.wire_bytes(inner.spec.nic.header_bytes);
    if inner.trace.is_enabled() {
        if let Some((msg_seq, frag)) = frag_info(&pkt.kind) {
            inner.trace.emit(
                inner.sim.now(),
                TraceKind::FragTx {
                    node: inner.node as u32,
                    qpn: pkt.src_qpn.0,
                    dst: pkt.dst_node as u32,
                    msg_seq,
                    frag,
                    bytes: wire as u32,
                },
            );
        }
    }
    inner.fabric.transmit(Frame {
        src: pkt.src_node,
        dst: pkt.dst_node,
        wire_bytes: wire,
        flow: flow_label(&pkt),
        ecn: false,
        payload: pkt,
    });
}

/// ECMP flow label: all of a QP pair's traffic in one direction shares a
/// label, so switched topologies keep it on one path (RC stays in order).
fn flow_label(pkt: &Packet) -> u64 {
    ((pkt.src_qpn.0 as u64) << 32) | pkt.dst_qpn.0 as u64
}

/// `(msg_seq, frag)` for data-bearing packet kinds; control packets
/// (ACK/NAK/CNP, read requests) carry no fragment lifecycle.
fn frag_info(k: &PacketKind) -> Option<(u32, u32)> {
    match k {
        PacketKind::SendFrag { msg_id, frag, .. }
        | PacketKind::WriteFrag { msg_id, frag, .. }
        | PacketKind::ReadResp { msg_id, frag, .. } => Some((*msg_id as u32, *frag)),
        _ => None,
    }
}

fn push_cqe(cq: &Cq, cqe: Cqe) {
    cq.push(cqe);
}

/// Size of a CQE on the wire to host memory.
const CQE_BYTES: usize = 64;

/// Deliver a CQE the way hardware does: a DMA write into the CQ ring. The
/// ToHost DMA FIFO both delays visibility by the transaction latency
/// (≈0.2 µs on the latency path) and keeps CQEs ordered after the payload
/// writes that precede them.
fn deliver_cqe(inner: &Rc<NicInner>, cq: &Cq, cqe: Cqe) {
    let at = inner.dma.enqueue(DmaDir::ToHost, CQE_BYTES);
    // Stamped with the DMA completion instant — when the CQE becomes
    // visible to software — not the enqueue instant.
    inner.trace.emit(
        at,
        TraceKind::CqeDone {
            node: inner.node as u32,
            qpn: cqe.qp.0,
            wr_id: cqe.wr_id.0,
        },
    );
    let cq = cq.clone();
    inner.sim.schedule_at(at, move |_| cq.push(cqe));
}

fn flush_qp(inner: &Rc<NicInner>, qp: &mut Qp) {
    // Tear down retransmission: cancel the pending timer (tombstone in
    // the wheel) and drop the window — errored QPs never replay.
    if let Some(rx) = qp.retx.as_mut() {
        if let Some(h) = rx.timer.take() {
            inner.sim.cancel_scheduled(h);
        }
        if let Some(h) = rx.rnr_timer.take() {
            inner.sim.cancel_scheduled(h);
        }
        rx.window.clear();
        rx.rtx.clear();
        rx.rtx_mask.clear();
    }
    let flush_cqe = |qp: &Qp, wr_id, opcode: CqeOpcode| Cqe {
        wr_id,
        status: CqeStatus::WrFlushErr,
        opcode,
        byte_len: 0,
        qp: qp.num,
        imm: None,
        src_qp: None,
        src_node: None,
    };
    // Outstanding (already transmitted, awaiting ACK/response) WQEs flush
    // too — IB errors out *every* posted WR, not just the still-queued
    // ones. Drained in message order: HashMap iteration order is not
    // deterministic and CQE order is observable.
    let mut acks: Vec<(u64, PendingAck)> = qp.pending_acks.drain().collect();
    acks.sort_by_key(|(m, _)| *m);
    let acked_msgs: Vec<u64> = acks.iter().map(|(m, _)| *m).collect();
    for (_, pa) in acks {
        if pa.signaled {
            push_cqe(&qp.send_cq, flush_cqe(qp, pa.wr_id, pa.opcode.into()));
        }
    }
    let mut reads: Vec<(u64, PendingRead)> = qp.pending_reads.drain().collect();
    reads.sort_by_key(|(m, _)| *m);
    for (_, pr) in reads {
        if pr.signaled {
            push_cqe(&qp.send_cq, flush_cqe(qp, pr.wr_id, CqeOpcode::RdmaRead));
        }
    }
    qp.outstanding_reads = 0;
    qp.stalled_rd = false;
    // The WQE mid-segmentation — unless it is a *replay* of a message
    // whose first pass already has a pending-ack entry drained above.
    if let Some(tx) = qp.tx.take() {
        if tx.wqe.signaled && !acked_msgs.contains(&tx.msg_id) {
            push_cqe(
                &qp.send_cq,
                flush_cqe(qp, tx.wqe.wr_id, tx.wqe.opcode.into()),
            );
        }
    }
    // A receive WQE bound to a half-assembled inbound message was popped
    // from the RQ; flush it like the rest of the RQ.
    if let Some(asm) = qp.cur_recv.take() {
        push_cqe(&qp.recv_cq, flush_cqe(qp, asm.wqe.wr_id, CqeOpcode::Recv));
    }
    // Selective repeat holds several open reassemblies at once, each with
    // a popped receive WQE; flush them in message order (BTreeMap).
    let sr_asms = std::mem::take(&mut qp.sr_recv);
    for (_, asm) in sr_asms {
        push_cqe(&qp.recv_cq, flush_cqe(qp, asm.wqe.wr_id, CqeOpcode::Recv));
    }
    let (sq, rq) = qp.enter_error();
    for w in sq {
        if w.signaled {
            push_cqe(
                &qp.send_cq,
                Cqe {
                    wr_id: w.wr_id,
                    status: CqeStatus::WrFlushErr,
                    opcode: w.opcode.into(),
                    byte_len: 0,
                    qp: qp.num,
                    imm: None,
                    src_qp: None,
                    src_node: None,
                },
            );
        }
    }
    for r in rq {
        push_cqe(
            &qp.recv_cq,
            Cqe {
                wr_id: r.wr_id,
                status: CqeStatus::WrFlushErr,
                opcode: CqeOpcode::Recv,
                byte_len: 0,
                qp: qp.num,
                imm: None,
                src_qp: None,
                src_node: None,
            },
        );
    }
    inner.trace.emit(
        inner.sim.now(),
        TraceKind::QpFlush {
            node: inner.node as u32,
            qpn: qp.num.0,
        },
    );
}

/// ===================== RC retransmission =====================
///
/// Sender side of go-back-N. The window holds every unacked WQE in
/// message order; one timer per QP covers the oldest unacked message and
/// is re-armed (tombstone-cancel + fresh wheel insert, no allocation) on
/// every ACK. A timeout or sequence NAK queues every fully transmitted
/// window entry for replay; the TX scheduler drains that queue ahead of
/// fresh sends, reusing the original message ids so the receiver's
/// in-order tracking accepts the replay. Retry exhaustion surfaces as a
/// `RetryExcErr` completion and flushes the QP.
/// Reset the QP's retransmit timer to `timeout` from now (cancelling any
/// pending one); disarms when the window is empty.
fn arm_retx_timer(inner: &Rc<NicInner>, qp: &mut Qp) {
    let qpn = qp.num;
    let Some(rx) = qp.retx.as_mut() else { return };
    if let Some(h) = rx.timer.take() {
        inner.sim.cancel_scheduled(h);
    }
    if rx.window.is_empty() {
        return;
    }
    let at = inner.sim.now() + rx.cfg.backoff(rx.retries);
    let inner2 = Rc::clone(inner);
    rx.timer = Some(
        inner
            .sim
            .schedule_cancellable_at(at, move |_| retx_timeout(&inner2, qpn)),
    );
}

/// A message finished its (first or replayed) pass to the fabric: mark
/// its window entry replayable and make sure a retransmit timer covers
/// the window.
fn mark_sent_and_arm(inner: &Rc<NicInner>, qp: &mut Qp, msg_id: u64) {
    let Some(rx) = qp.retx.as_mut() else { return };
    if let Some(e) = rx.window.iter_mut().find(|e| e.msg_id == msg_id) {
        e.sent = true;
    }
    if rx.timer.is_none() {
        arm_retx_timer(inner, qp);
    }
}

/// Retransmit timer fired: replay the window, or error out the QP once
/// the retry budget is exhausted.
fn retx_timeout(inner: &Rc<NicInner>, qpn: QpNum) {
    let Some(qp_rc) = inner.qp_rc(qpn) else {
        return;
    };
    let mut qp = qp_rc.borrow_mut();
    if qp.state != QpState::Rts {
        return;
    }
    let Some(rx) = qp.retx.as_mut() else { return };
    rx.timer = None;
    if rx.window.is_empty() {
        return;
    }
    if !rx.window.iter().any(|e| e.sent) {
        // Nothing fully transmitted yet — a large message still streaming
        // (e.g. paced to a deep DCQCN cut) is not a loss signal. Re-arm
        // without consuming retry budget.
        arm_retx_timer(inner, &mut qp);
        return;
    }
    rx.retries += 1;
    if rx.retries > rx.cfg.max_retries {
        // Retry exhausted: error completion for the oldest unacked WQE,
        // then flush the QP (IB semantics for transport retry errors).
        let e = rx.window.front().expect("window checked non-empty");
        let (wr_id, opcode, msg_id) = (e.wqe.wr_id, e.wqe.opcode, e.msg_id);
        inner.retx_exhausted.set(inner.retx_exhausted.get() + 1);
        qp.pending_acks.remove(&msg_id);
        if qp.pending_reads.remove(&msg_id).is_some() {
            qp.outstanding_reads -= 1;
        }
        // The WQE gets its terminal CQE below; if a replay of it is
        // mid-segmentation, drop that progress so flush_qp cannot emit a
        // second completion for the same WR.
        if qp.tx.as_ref().is_some_and(|tx| tx.msg_id == msg_id) {
            qp.tx = None;
        }
        push_cqe(
            &qp.send_cq,
            Cqe {
                wr_id,
                status: CqeStatus::RetryExcErr,
                opcode: opcode.into(),
                byte_len: 0,
                qp: qp.num,
                imm: None,
                src_qp: None,
                src_node: None,
            },
        );
        inner.trace.emit(
            inner.sim.now(),
            TraceKind::RetxExhausted {
                node: inner.node as u32,
                qpn: qpn.0,
            },
        );
        flush_qp(inner, &mut qp);
        return;
    }
    let queued = rx.queue_replay();
    inner.retx_replays.set(inner.retx_replays.get() + queued);
    arm_retx_timer(inner, &mut qp);
    drop(qp);
    if queued > 0 {
        ring_qp(inner, qpn);
    }
}

/// Go-back-N trigger from a sequence NAK: replay from the responder's
/// first missing message (`from`) — older window entries were delivered
/// and their ACKs are merely in flight, so replaying them would waste
/// bottleneck bandwidth on duplicates. NAK-triggered replays do not
/// consume retries — only silent timeouts do; ACK progress resets the
/// count.
fn retx_go_back(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>, from: u64) {
    let qpn = {
        let mut qp = qp_rc.borrow_mut();
        let Some(rx) = qp.retx.as_mut() else { return };
        let queued = rx.queue_replay_from(from);
        inner.retx_replays.set(inner.retx_replays.get() + queued);
        arm_retx_timer(inner, &mut qp);
        if queued == 0 {
            return;
        }
        qp.num
    };
    ring_qp(inner, qpn);
}

/// RNR NAK with retransmission armed: the responder had no receive WQE for
/// `msg_id`. Arm a backoff timer (same wheel as the loss timer, shorter
/// base period — `ibv_modify_qp`'s rnr_timer attribute) that replays from
/// the NAKed message, giving the application time to post a buffer. ACK
/// progress resets the RNR count. Returns whether the NAK was absorbed;
/// `false` (budget exhausted, or retransmission unarmed) sends the caller
/// down the fatal `RnrRetryExceeded` path.
fn rnr_defer(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>, msg_id: u64) -> bool {
    let mut qp = qp_rc.borrow_mut();
    let qpn = qp.num;
    let Some(rx) = qp.retx.as_mut() else {
        return false;
    };
    rx.rnr_retries += 1;
    if rx.rnr_retries > rx.cfg.max_rnr_retries {
        inner.retx_exhausted.set(inner.retx_exhausted.get() + 1);
        inner.trace.emit(
            inner.sim.now(),
            TraceKind::RnrExhausted {
                node: inner.node as u32,
                qpn: qpn.0,
            },
        );
        return false;
    }
    let delay = rx.cfg.rnr_backoff(rx.rnr_retries - 1);
    rx.rnr_from = msg_id;
    if let Some(h) = rx.rnr_timer.take() {
        inner.sim.cancel_scheduled(h);
    }
    let at = inner.sim.now() + delay;
    let inner2 = Rc::clone(inner);
    rx.rnr_timer = Some(
        inner
            .sim
            .schedule_cancellable_at(at, move |_| rnr_fire(&inner2, qpn)),
    );
    true
}

/// RNR backoff timer fired: replay from the NAKed message (the receiver's
/// sequence state was rewound to it when the NAK was generated).
fn rnr_fire(inner: &Rc<NicInner>, qpn: QpNum) {
    let Some(qp_rc) = inner.qp_rc(qpn) else {
        return;
    };
    let from = {
        let mut qp = qp_rc.borrow_mut();
        if qp.state != QpState::Rts {
            return;
        }
        let Some(rx) = qp.retx.as_mut() else { return };
        rx.rnr_timer = None;
        rx.rnr_from
    };
    retx_go_back(inner, &qp_rc, from);
}

/// ===================== TX scheduler =====================
async fn tx_loop(inner: Rc<NicInner>) {
    loop {
        let qpn = loop {
            let head = inner.tx_ring.borrow_mut().pop_front();
            match head {
                Some(q) => break q,
                None => inner.tx_notify.notified().await,
            }
        };
        process_burst(&inner, qpn).await;
    }
}

/// Process up to [`TX_BURST`] fragments for one QP, then yield.
async fn process_burst(inner: &Rc<NicInner>, qpn: QpNum) {
    let Some(qp_rc) = inner.qp_rc(qpn) else {
        return;
    };
    let mut budget = TX_BURST;

    while budget > 0 {
        // Ensure there is an in-progress WQE, starting a new one if needed.
        let has_progress = qp_rc.borrow().tx.is_some();
        if !has_progress {
            let started = start_next_wqe(inner, &qp_rc).await;
            match started {
                StartOutcome::Started => {}
                StartOutcome::NothingToDo => {
                    qp_rc.borrow_mut().in_ring = false;
                    return;
                }
                StartOutcome::StalledOnReads => {
                    let mut qp = qp_rc.borrow_mut();
                    qp.stalled_rd = true;
                    qp.in_ring = false;
                    return;
                }
                StartOutcome::Consumed(cost) => {
                    // A WQE that needed no segmentation (read request or an
                    // erroring WQE): bill its pipeline cost and continue.
                    budget = budget.saturating_sub(cost);
                    continue;
                }
            }
        }
        // Emit fragments. `None` means the QP hit its DCQCN pacing gate
        // and already rescheduled itself — leave it off the ring.
        match emit_fragments(inner, &qp_rc, budget).await {
            Some(rem) => budget = rem,
            None => return,
        }
    }

    // Budget exhausted: requeue if work remains.
    let mut qp = qp_rc.borrow_mut();
    if qp.tx.is_some() || !qp.sq.is_empty() {
        inner.tx_ring.borrow_mut().push_back(qpn);
        inner.tx_notify.notify_one();
    } else {
        qp.in_ring = false;
    }
}

enum StartOutcome {
    Started,
    NothingToDo,
    StalledOnReads,
    /// WQE fully handled during start (no fragments); burn `n` budget.
    Consumed(u32),
}

async fn start_next_wqe(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>) -> StartOutcome {
    // Go-back-N replays run ahead of fresh sends (the receiver is waiting
    // on exactly these message ids).
    if let Some(out) = start_replay(inner, qp_rc).await {
        return out;
    }
    // Peek first: reads may stall without consuming the WQE.
    {
        let qp = qp_rc.borrow();
        match qp.sq.front() {
            None => return StartOutcome::NothingToDo,
            Some(w) if w.opcode == Opcode::RdmaRead && qp.outstanding_reads >= qp.max_rd_atomic => {
                return StartOutcome::StalledOnReads;
            }
            Some(_) => {}
        }
    }
    // Per-WQE NIC processing cost.
    inner
        .tx_pipeline
        .use_for(inner.pipe_cost(inner.spec.nic.wqe_proc_ns))
        .await;

    let (wqe, msg_id, peer) = {
        let mut qp = qp_rc.borrow_mut();
        let Some(wqe) = qp.sq.pop_front() else {
            return StartOutcome::NothingToDo;
        };
        let msg_id = qp.alloc_msg_id();
        if qp.transport == Transport::Rc {
            if let Some(rx) = qp.retx.as_mut() {
                rx.window.push_back(RetxEntry {
                    msg_id,
                    wqe: wqe.clone(),
                    sent: false,
                });
            }
        }
        let peer = qp.peer;
        (wqe, msg_id, peer)
    };

    // Local memory validation: TX fetch for sends/writes, local landing
    // (needs LOCAL_WRITE) for reads.
    let needs_write = wqe.opcode == Opcode::RdmaRead;
    let mr = match inner
        .mrs
        .check_local(wqe.sge.lkey, wqe.sge.addr, wqe.sge.len, needs_write)
    {
        Ok(mr) => mr,
        Err(_) => {
            let mut qp = qp_rc.borrow_mut();
            push_cqe(
                &qp.send_cq,
                Cqe {
                    wr_id: wqe.wr_id,
                    status: CqeStatus::LocalProtErr,
                    opcode: wqe.opcode.into(),
                    byte_len: 0,
                    qp: qp.num,
                    imm: None,
                    src_qp: None,
                    src_node: None,
                },
            );
            if qp.transport == Transport::Rc {
                flush_qp(inner, &mut qp);
            }
            return StartOutcome::Consumed(1);
        }
    };

    match wqe.opcode {
        Opcode::RdmaRead => {
            let (raddr, rkey) = wqe.remote.expect("validated at post");
            let (dst_node, dst_qpn) = peer.expect("RC read on connected QP");
            {
                let mut qp = qp_rc.borrow_mut();
                qp.outstanding_reads += 1;
                qp.pending_reads.insert(
                    msg_id,
                    PendingRead {
                        wr_id: wqe.wr_id,
                        signaled: wqe.signaled,
                        addr: wqe.sge.addr,
                        len: wqe.sge.len,
                        lkey: wqe.sge.lkey,
                        next_frag: 0,
                        got: 0,
                    },
                );
            }
            let src_qpn = qp_rc.borrow().num;
            transmit(
                inner,
                Packet {
                    src_node: inner.node,
                    dst_node,
                    src_qpn,
                    dst_qpn,
                    ecn: false,
                    kind: PacketKind::ReadReq {
                        msg_id,
                        raddr,
                        rkey,
                        len: wqe.sge.len,
                    },
                },
            );
            {
                let mut qp = qp_rc.borrow_mut();
                mark_sent_and_arm(inner, &mut qp, msg_id);
            }
            StartOutcome::Consumed(1)
        }
        Opcode::Send | Opcode::RdmaWrite => {
            let nfrags = inner.spec.fragments(wqe.sge.len) as u32;
            qp_rc.borrow_mut().tx = Some(TxProgress {
                wqe,
                msg_id,
                next_frag: 0,
                nfrags,
                mem: mr.mem,
                skip: 0,
            });
            StartOutcome::Started
        }
    }
}

/// Pull the next queued go-back-N replay, if any: re-segment a send/write
/// from its window snapshot (original message id, payload re-read from
/// guest memory) or re-issue a read request. Returns `None` when there is
/// nothing to replay.
async fn start_replay(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>) -> Option<StartOutcome> {
    // Cheap peek before billing the pipeline.
    {
        let qp = qp_rc.borrow();
        match &qp.retx {
            Some(rx) if !rx.rtx.is_empty() => {}
            _ => return None,
        }
    }
    inner
        .tx_pipeline
        .use_for(inner.pipe_cost(inner.spec.nic.wqe_proc_ns))
        .await;
    let (msg_id, wqe, peer, qpn, drained, skip) = {
        let mut qp = qp_rc.borrow_mut();
        let peer = qp.peer;
        let qpn = qp.num;
        let rx = qp.retx.as_mut()?;
        let mut found = None;
        while let Some(mid) = rx.rtx.pop_front() {
            // ACKed while queued for replay: skip.
            if let Some(e) = rx.window.iter().find(|e| e.msg_id == mid) {
                found = Some((mid, e.wqe.clone()));
                break;
            }
        }
        let drained = rx.rtx.is_empty();
        let (mid, wqe) = found?;
        // Selective repeat: the receiver's SACK said which fragments it
        // already holds — this replay pass skips them. Consumed here; a
        // later round re-learns the (monotonically grown) bitmap from the
        // next SACK.
        let skip = rx.rtx_mask.remove(&mid).unwrap_or(0);
        (mid, wqe, peer, qpn, drained, skip)
    };
    inner.trace.emit(
        inner.sim.now(),
        TraceKind::ReplayStart {
            node: inner.node as u32,
            qpn: qpn.0,
            msg_seq: msg_id as u32,
        },
    );
    if drained {
        // The last queued message entered replay: the window closes here
        // (the exporter pairs the first ReplayStart with this).
        inner.trace.emit(
            inner.sim.now(),
            TraceKind::ReplayEnd {
                node: inner.node as u32,
                qpn: qpn.0,
            },
        );
    }
    match wqe.opcode {
        Opcode::RdmaRead => {
            // Re-issue the read request iff the read is still outstanding
            // (its completion may have raced the replay decision).
            let pending = qp_rc.borrow().pending_reads.contains_key(&msg_id);
            if pending {
                let (raddr, rkey) = wqe.remote.expect("validated at post");
                let (dst_node, dst_qpn) = peer.expect("RC read on connected QP");
                let src_qpn = qp_rc.borrow().num;
                transmit(
                    inner,
                    Packet {
                        src_node: inner.node,
                        dst_node,
                        src_qpn,
                        dst_qpn,
                        ecn: false,
                        kind: PacketKind::ReadReq {
                            msg_id,
                            raddr,
                            rkey,
                            len: wqe.sge.len,
                        },
                    },
                );
            }
            Some(StartOutcome::Consumed(1))
        }
        Opcode::Send | Opcode::RdmaWrite => {
            let mr = match inner
                .mrs
                .check_local(wqe.sge.lkey, wqe.sge.addr, wqe.sge.len, false)
            {
                Ok(mr) => mr,
                Err(_) => {
                    // The source region vanished between transmissions:
                    // surface it exactly like a fresh-WQE failure. The
                    // message's first-pass pending-ack record must go
                    // first — this CQE is the WR's terminal completion,
                    // and flush_qp would otherwise emit a second one.
                    let mut qp = qp_rc.borrow_mut();
                    qp.pending_acks.remove(&msg_id);
                    push_cqe(
                        &qp.send_cq,
                        Cqe {
                            wr_id: wqe.wr_id,
                            status: CqeStatus::LocalProtErr,
                            opcode: wqe.opcode.into(),
                            byte_len: 0,
                            qp: qp.num,
                            imm: None,
                            src_qp: None,
                            src_node: None,
                        },
                    );
                    flush_qp(inner, &mut qp);
                    return Some(StartOutcome::Consumed(1));
                }
            };
            let nfrags = inner.spec.fragments(wqe.sge.len) as u32;
            qp_rc.borrow_mut().tx = Some(TxProgress {
                wqe,
                msg_id,
                next_frag: 0,
                nfrags,
                mem: mr.mem,
                skip,
            });
            Some(StartOutcome::Started)
        }
    }
}

/// Emit fragments for the current progress until done or out of budget.
/// Returns the remaining budget, or `None` if the QP stalled on its DCQCN
/// pacing gate (in which case it has left the ring and a timer re-rings it
/// when the gate opens).
async fn emit_fragments(
    inner: &Rc<NicInner>,
    qp_rc: &Rc<RefCell<Qp>>,
    mut budget: u32,
) -> Option<u32> {
    loop {
        if budget == 0 {
            return Some(0);
        }
        // Selective-repeat replay: advance past fragments the receiver
        // SACKed as already held. A pass that ends on a skipped tail needs
        // no completion bookkeeping — the first pass installed the
        // pending-ack record and the replay trigger armed the timer.
        {
            let mut qp = qp_rc.borrow_mut();
            if let Some(tx) = &mut qp.tx {
                if tx.skip != 0 {
                    while tx.next_frag < tx.nfrags
                        && tx.next_frag < 64
                        && tx.skip >> tx.next_frag & 1 == 1
                    {
                        tx.next_frag += 1;
                    }
                    if tx.next_frag >= tx.nfrags {
                        qp.tx = None;
                        return Some(budget);
                    }
                }
            }
        }
        // DCQCN pacing: a rate-limited QP may not launch its next data
        // fragment before the inter-packet gap at its current rate.
        let now = inner.sim.now();
        let gate = {
            let mut qp = qp_rc.borrow_mut();
            match qp.dcqcn.as_mut().and_then(|d| d.gate(now)) {
                Some(at) => {
                    qp.in_ring = false;
                    Some((at, qp.num))
                }
                None => None,
            }
        };
        if let Some((at, qpn)) = gate {
            let inner2 = Rc::clone(inner);
            inner.sim.schedule_at(at, move |_| ring_qp(&inner2, qpn));
            return None;
        }
        // Snapshot fragment parameters without holding the borrow — the
        // scalars the fragment needs, not a clone of the whole WQE — and
        // charge the committed fragment against the DCQCN rate in the
        // same borrow (the gate above was open).
        let (sge, wr_id, signaled, opcode, imm, remote, ud_dest, inline, msg_id, frag, nfrags) = {
            let qp = qp_rc.borrow();
            let Some(tx) = &qp.tx else {
                return Some(budget);
            };
            (
                tx.wqe.sge,
                tx.wqe.wr_id,
                tx.wqe.signaled,
                tx.wqe.opcode,
                tx.wqe.imm,
                tx.wqe.remote,
                tx.wqe.ud_dest,
                tx.wqe.inline_data.clone(),
                tx.msg_id,
                tx.next_frag,
                tx.nfrags,
            )
        };
        let mtu = inner.spec.nic.mtu;
        let offset = frag as usize * mtu;
        let frag_len = (sge.len - offset).min(mtu);
        let last = frag + 1 == nfrags;

        let (mem, qpn, peer, transport) = {
            let mut qp = qp_rc.borrow_mut();
            if let Some(d) = qp.dcqcn.as_mut() {
                d.charge(now, frag_len + inner.spec.nic.header_bytes);
            }
            let Some(tx) = &qp.tx else {
                return Some(budget);
            };
            (tx.mem.clone(), qp.num, qp.peer, qp.transport)
        };

        // Respect the in-flight window so we pace at the bottleneck.
        inner.tx_window.acquire(1).await;

        // Fetch payload: inline data was captured at post time; otherwise a
        // DMA read whose completion gates the frame's entry to the fabric.
        let (payload, ready): (PayloadSeg, SimTime) = if let Some(inline) = &inline {
            (inline.slice(offset, frag_len), inner.sim.now())
        } else {
            let data = mem
                .read(sge.addr + offset as u64, frag_len)
                .expect("range validated at WQE start");
            (data, inner.dma.enqueue(DmaDir::FromHost, frag_len))
        };

        let (dst_node, dst_qpn) = match transport {
            Transport::Rc => peer.expect("RC connected"),
            Transport::Ud => {
                let d = ud_dest.expect("validated at post");
                (d.node, d.qpn)
            }
        };
        let kind = match opcode {
            Opcode::Send => PacketKind::SendFrag {
                msg_id,
                frag,
                nfrags,
                total_len: sge.len,
                offset,
                payload,
                imm,
            },
            Opcode::RdmaWrite => {
                let (raddr, rkey) = remote.expect("validated at post");
                PacketKind::WriteFrag {
                    msg_id,
                    frag,
                    nfrags,
                    total_len: sge.len,
                    raddr,
                    rkey,
                    offset,
                    payload,
                    imm,
                }
            }
            Opcode::RdmaRead => unreachable!("reads have no fragments"),
        };
        let pkt = Packet {
            src_node: inner.node,
            dst_node,
            src_qpn: qpn,
            dst_qpn,
            ecn: false,
            kind,
        };

        // Transmit when the payload is on-NIC; release the window then.
        let inner2 = Rc::clone(inner);
        let qp2 = Rc::clone(qp_rc);
        let total_len = sge.len;
        inner.sim.schedule_at(ready, move |_| {
            transmit(&inner2, pkt);
            inner2.tx_window.release(1);
            if last {
                let mut qp = qp2.borrow_mut();
                // Which pass just finished? On a retransmitting QP the
                // window entry tells: missing = the ACK landed mid-replay
                // (do nothing — re-inserting pending_acks here would pair
                // with the receiver's duplicate re-ACK into a second
                // completion); `sent` already true = a replay pass (await
                // the ACK again but don't re-count the message).
                let (first_pass, acked) = match qp.retx.as_ref() {
                    None => (true, false),
                    Some(rx) => match rx.window.iter().find(|e| e.msg_id == msg_id) {
                        None => (false, true),
                        Some(e) => (!e.sent, false),
                    },
                };
                if first_pass {
                    qp.tx_msgs += 1;
                    qp.tx_bytes += total_len as u64;
                }
                match transport {
                    Transport::Ud => {
                        // UD: local completion once the NIC owns the data.
                        if signaled {
                            let cqe = Cqe {
                                wr_id,
                                status: CqeStatus::Success,
                                opcode: opcode.into(),
                                byte_len: total_len,
                                qp: qp.num,
                                imm: None,
                                src_qp: None,
                                src_node: None,
                            };
                            let cq = qp.send_cq.clone();
                            drop(qp);
                            deliver_cqe(&inner2, &cq, cqe);
                        }
                    }
                    Transport::Rc if !acked => {
                        qp.pending_acks.insert(
                            msg_id,
                            PendingAck {
                                wr_id,
                                signaled,
                                opcode,
                                byte_len: total_len,
                            },
                        );
                        mark_sent_and_arm(&inner2, &mut qp, msg_id);
                    }
                    Transport::Rc => {}
                }
            }
        });

        // Pace the scheduler: per-packet pipeline occupancy.
        inner
            .tx_pipeline
            .use_for(inner.pipe_cost(inner.spec.nic.tx_pkt_ns))
            .await;

        budget -= 1;
        let mut qp = qp_rc.borrow_mut();
        if last {
            qp.tx = None;
            return Some(budget);
        } else if let Some(tx) = &mut qp.tx {
            tx.next_frag += 1;
        }
    }
}

/// ===================== RX pipeline =====================
async fn rx_loop(inner: Rc<NicInner>) {
    let rx = inner.rx.borrow_mut().take().expect("rx taken once");
    loop {
        let Ok(frame) = rx.recv().await else { return };
        inner
            .rx_pipeline
            .use_for(inner.pipe_cost(inner.spec.nic.rx_pkt_ns))
            .await;
        inner.rx_packets.set(inner.rx_packets.get() + 1);
        // Surface the fabric's ECN mark in the packet header.
        let mut pkt = frame.payload;
        pkt.ecn |= frame.ecn;
        handle_packet(&inner, pkt);
    }
}

/// Header fields of a received packet, kept after its payload has been
/// moved out — everything reply paths (ACK/NAK/CNP, CQE source fields)
/// need, without cloning whole packets.
#[derive(Debug, Clone, Copy)]
struct PktHdr {
    src_node: NodeId,
    src_qpn: QpNum,
    dst_qpn: QpNum,
}

impl PktHdr {
    fn of(pkt: &Packet) -> PktHdr {
        PktHdr {
            src_node: pkt.src_node,
            src_qpn: pkt.src_qpn,
            dst_qpn: pkt.dst_qpn,
        }
    }
}

fn nak(inner: &Rc<NicInner>, hdr: PktHdr, msg_id: u64, reason: NakReason) {
    transmit(
        inner,
        Packet {
            src_node: inner.node,
            dst_node: hdr.src_node,
            src_qpn: hdr.dst_qpn,
            dst_qpn: hdr.src_qpn,
            ecn: false,
            kind: PacketKind::Nak { msg_id, reason },
        },
    );
}

fn ack(inner: &Rc<NicInner>, hdr: PktHdr, msg_id: u64) {
    transmit(
        inner,
        Packet {
            src_node: inner.node,
            dst_node: hdr.src_node,
            src_qpn: hdr.dst_qpn,
            dst_qpn: hdr.src_qpn,
            ecn: false,
            kind: PacketKind::Ack { msg_id },
        },
    );
}

fn sack(inner: &Rc<NicInner>, hdr: PktHdr, msg_id: u64, received: u64) {
    transmit(
        inner,
        Packet {
            src_node: inner.node,
            dst_node: hdr.src_node,
            src_qpn: hdr.dst_qpn,
            dst_qpn: hdr.src_qpn,
            ecn: false,
            kind: PacketKind::Sack { msg_id, received },
        },
    );
}

/// Whether the QP's armed retransmission discipline is selective repeat.
fn sr_mode(qp: &Qp) -> bool {
    qp.retx
        .as_ref()
        .is_some_and(|rx| rx.cfg.mode == RetxMode::Sr)
}

/// Echo a congestion notification for an ECN-marked arrival, if the
/// receiving QP participates in DCQCN and its per-QP CNP budget allows.
fn maybe_echo_cnp(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>, pkt: &Packet) {
    let now = inner.sim.now();
    {
        let mut qp = qp_rc.borrow_mut();
        if qp.transport != Transport::Rc || qp.dcqcn.is_none() {
            return;
        }
        let due = qp
            .last_cnp_tx
            .is_none_or(|t| now.since(t) >= CNP_MIN_INTERVAL);
        if !due {
            return;
        }
        qp.last_cnp_tx = Some(now);
    }
    transmit(
        inner,
        Packet {
            src_node: inner.node,
            dst_node: pkt.src_node,
            src_qpn: pkt.dst_qpn,
            dst_qpn: pkt.src_qpn,
            ecn: false,
            kind: PacketKind::Cnp,
        },
    );
}

fn handle_packet(inner: &Rc<NicInner>, pkt: Packet) {
    let Some(qp_rc) = inner.qp_rc(pkt.dst_qpn) else {
        return; // stale packet to a destroyed QP
    };
    if inner.trace.is_enabled() {
        if let Some((msg_seq, frag)) = frag_info(&pkt.kind) {
            inner.trace.emit(
                inner.sim.now(),
                TraceKind::FragRx {
                    node: inner.node as u32,
                    qpn: pkt.dst_qpn.0,
                    src: pkt.src_node as u32,
                    msg_seq,
                    frag,
                    bytes: pkt.wire_bytes(inner.spec.nic.header_bytes) as u32,
                },
            );
        }
    }
    // Congestion feedback is independent of WQE state: echo a CNP for any
    // marked data-bearing arrival before normal processing.
    if pkt.ecn && pkt.is_data() {
        maybe_echo_cnp(inner, &qp_rc, &pkt);
    }
    // Destructure by value: handlers receive the payload without a clone
    // and the header fields as a small `Copy` struct.
    let hdr = PktHdr::of(&pkt);
    match pkt.kind {
        PacketKind::SendFrag {
            msg_id,
            frag,
            nfrags,
            total_len,
            offset,
            payload,
            imm,
        } => handle_send_frag(
            inner, &qp_rc, hdr, msg_id, frag, nfrags, total_len, offset, payload, imm,
        ),
        PacketKind::WriteFrag {
            msg_id,
            frag,
            nfrags,
            total_len,
            raddr,
            rkey,
            offset,
            payload,
            imm,
        } => handle_write_frag(
            inner, &qp_rc, hdr, msg_id, frag, nfrags, total_len, raddr, rkey, offset, payload, imm,
        ),
        PacketKind::ReadReq {
            msg_id,
            raddr,
            rkey,
            len,
        } => handle_read_req(inner, &qp_rc, hdr, msg_id, raddr, rkey, len),
        PacketKind::ReadResp {
            msg_id,
            frag,
            nfrags,
            offset,
            payload,
        } => handle_read_resp(inner, &qp_rc, msg_id, frag, nfrags, offset, payload),
        PacketKind::Ack { msg_id } => handle_ack(inner, &qp_rc, msg_id),
        PacketKind::Nak { msg_id, reason } => handle_nak(inner, &qp_rc, msg_id, reason),
        PacketKind::Sack { msg_id, received } => handle_sack(inner, &qp_rc, msg_id, received),
        PacketKind::Cnp => handle_cnp(inner, &qp_rc),
    }
}

/// Receiver-side go-back-N gate for request packets. A no-op
/// ([`RxSeq::Accept`]) unless retransmission is armed on the QP; emits the
/// coalesced sequence NAK (naming the first missing message) when the
/// check reports a fresh gap.
fn rx_gate(
    inner: &Rc<NicInner>,
    qp_rc: &Rc<RefCell<Qp>>,
    hdr: PktHdr,
    msg_id: u64,
    frag: u32,
    last: bool,
) -> RxSeq {
    let decision = qp_rc.borrow_mut().rx_seq_check(msg_id, frag, last);
    if let RxSeq::Drop { nak: true } = decision {
        let missing = qp_rc.borrow().rx_expected_msg();
        nak(inner, hdr, missing, NakReason::Sequence);
    }
    decision
}

fn handle_cnp(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>) {
    let now = inner.sim.now();
    let mut qp = qp_rc.borrow_mut();
    if let Some(d) = qp.dcqcn.as_mut() {
        d.on_cnp(now);
        let rate = d.rate_gbps;
        let qpn = qp.num;
        drop(qp);
        inner.trace.emit(
            now,
            TraceKind::RateCut {
                node: inner.node as u32,
                qpn: qpn.0,
                rate_mbps: (rate * 1000.0) as u32,
            },
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_send_frag(
    inner: &Rc<NicInner>,
    qp_rc: &Rc<RefCell<Qp>>,
    hdr: PktHdr,
    msg_id: u64,
    frag: u32,
    nfrags: u32,
    total_len: usize,
    offset: usize,
    payload: PayloadSeg,
    imm: Option<u32>,
) {
    let transport = qp_rc.borrow().transport;
    if sr_mode(&qp_rc.borrow()) {
        return sr_handle_send_frag(
            inner, qp_rc, hdr, msg_id, frag, nfrags, total_len, offset, payload, imm,
        );
    }
    // Lossless-recovery gate: out-of-order arrivals on a retransmitting QP
    // are dropped (and NAKed once per gap) instead of being reassembled.
    match rx_gate(inner, qp_rc, hdr, msg_id, frag, frag + 1 == nfrags) {
        RxSeq::Accept => {}
        RxSeq::Drop { .. } => return,
        RxSeq::DupAck => {
            // The whole message already completed; its ACK was lost.
            ack(inner, hdr, msg_id);
            return;
        }
    }
    if frag == 0 {
        // Start of a message: bind a receive WQE.
        let popped = qp_rc.borrow_mut().rq.pop_front();
        let Some(rwqe) = popped else {
            if transport == Transport::Rc {
                // The in-order gate above already advanced past `msg_id`;
                // rewind so the post-backoff replay is accepted from
                // fragment 0 instead of being classified as a duplicate.
                qp_rc.borrow_mut().rx_rnr_rewind(msg_id);
                nak(inner, hdr, msg_id, NakReason::Rnr);
            }
            return; // UD silently drops
        };
        if total_len > rwqe.sge.len {
            push_cqe(
                &qp_rc.borrow().recv_cq,
                Cqe {
                    wr_id: rwqe.wr_id,
                    status: CqeStatus::LocalProtErr,
                    opcode: CqeOpcode::Recv,
                    byte_len: 0,
                    qp: qp_rc.borrow().num,
                    imm: None,
                    src_qp: None,
                    src_node: None,
                },
            );
            if transport == Transport::Rc {
                nak(inner, hdr, msg_id, NakReason::LengthError);
            }
            return;
        }
        let mr = match inner
            .mrs
            .check_local(rwqe.sge.lkey, rwqe.sge.addr, rwqe.sge.len, true)
        {
            Ok(mr) => mr,
            Err(_) => {
                push_cqe(
                    &qp_rc.borrow().recv_cq,
                    Cqe {
                        wr_id: rwqe.wr_id,
                        status: CqeStatus::LocalProtErr,
                        opcode: CqeOpcode::Recv,
                        byte_len: 0,
                        qp: qp_rc.borrow().num,
                        imm: None,
                        src_qp: None,
                        src_node: None,
                    },
                );
                if transport == Transport::Rc {
                    qp_rc.borrow_mut().rx_rnr_rewind(msg_id);
                    nak(inner, hdr, msg_id, NakReason::Rnr);
                }
                return;
            }
        };
        qp_rc.borrow_mut().cur_recv = Some(RecvAssembly {
            msg_id,
            wqe: rwqe,
            received: 0,
            total_len,
            mem: mr.mem,
        });
    }

    let last = frag + 1 == nfrags;
    let (dst_addr, mem, rwr_id) = {
        let mut qp = qp_rc.borrow_mut();
        let Some(asm) = &mut qp.cur_recv else { return };
        if asm.msg_id != msg_id {
            return; // stale fragment of an aborted message
        }
        asm.received += payload.len();
        let out = (
            asm.wqe.sge.addr + offset as u64,
            asm.mem.clone(),
            asm.wqe.wr_id,
        );
        // RC delivers in order: once the last fragment has *arrived* the
        // slot can host the next message, even though this message's DMA
        // completion (and CQE) is still in flight.
        if last {
            qp.cur_recv = None;
        }
        out
    };

    let dma_done = inner.dma.enqueue(DmaDir::ToHost, payload.len());
    let inner2 = Rc::clone(inner);
    let qp2 = Rc::clone(qp_rc);
    inner.sim.schedule_at(dma_done, move |_| {
        mem.install(dst_addr, &payload)
            .expect("validated landing zone");
        if last {
            let mut qp = qp2.borrow_mut();
            qp.rx_msgs += 1;
            qp.rx_bytes += total_len as u64;
            let cqe = Cqe {
                wr_id: rwr_id,
                status: CqeStatus::Success,
                opcode: if imm.is_some() {
                    CqeOpcode::RecvWithImm
                } else {
                    CqeOpcode::Recv
                },
                byte_len: total_len,
                qp: qp.num,
                imm,
                src_qp: Some(hdr.src_qpn),
                src_node: Some(hdr.src_node),
            };
            let recv_cq = qp.recv_cq.clone();
            let is_rc = qp.transport == Transport::Rc;
            drop(qp);
            deliver_cqe(&inner2, &recv_cq, cqe);
            if is_rc {
                ack(&inner2, hdr, msg_id);
            }
        }
    });
}

/// ===================== Selective-repeat RX =====================
///
/// Fragments install out of order through the idempotent
/// `GuestMem::install` patch path; each message ACKs individually on
/// completion so the sender's window drains selectively, and a SACK (one
/// per gap episode) tells the sender exactly which fragments of the first
/// missing message to replay. Sends still bind receive WQEs in strict
/// message order — [`SrRxWindow`](crate::qp::SrRxWindow)'s binding floor —
/// so WQE↔message pairing is identical to go-back-N delivery.
/// Bind receive WQEs for sends at the selective-repeat binding floor.
/// `(arr_msg, arr_frag)` identify the arriving fragment that triggered
/// the attempt: RNR NAKs fire only when fragment 0 of the stalled message
/// itself arrives, bounding NAK traffic to one per replay round (the
/// go-back-N discipline).
fn sr_bind_ready(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>, hdr: PktHdr, arr: (u64, u32)) {
    loop {
        let (m, total_len) = {
            let mut qp = qp_rc.borrow_mut();
            let Some(rx) = qp.retx.as_mut() else { return };
            match rx.sr.next_bind() {
                Some(m) => (m, rx.sr.total_len(m)),
                None => return,
            }
        };
        let popped = qp_rc.borrow_mut().rq.pop_front();
        let Some(rwqe) = popped else {
            if arr == (m, 0) {
                nak(inner, hdr, m, NakReason::Rnr);
            }
            return;
        };
        if total_len > rwqe.sge.len {
            let mut qp = qp_rc.borrow_mut();
            push_cqe(
                &qp.recv_cq,
                Cqe {
                    wr_id: rwqe.wr_id,
                    status: CqeStatus::LocalProtErr,
                    opcode: CqeOpcode::Recv,
                    byte_len: 0,
                    qp: qp.num,
                    imm: None,
                    src_qp: None,
                    src_node: None,
                },
            );
            if let Some(rx) = qp.retx.as_mut() {
                // Entry exists (the floor pointed at it); nfrags/kind are
                // only used when creating a missing one.
                rx.sr.poison(m, 1, SrKind::Send);
            }
            drop(qp);
            nak(inner, hdr, m, NakReason::LengthError);
            continue;
        }
        let mr = match inner
            .mrs
            .check_local(rwqe.sge.lkey, rwqe.sge.addr, rwqe.sge.len, true)
        {
            Ok(mr) => mr,
            Err(_) => {
                let qp = qp_rc.borrow_mut();
                push_cqe(
                    &qp.recv_cq,
                    Cqe {
                        wr_id: rwqe.wr_id,
                        status: CqeStatus::LocalProtErr,
                        opcode: CqeOpcode::Recv,
                        byte_len: 0,
                        qp: qp.num,
                        imm: None,
                        src_qp: None,
                        src_node: None,
                    },
                );
                drop(qp);
                // The WQE is consumed and errored; the message stays
                // unbound so the post-backoff replay binds the next one.
                if arr == (m, 0) {
                    nak(inner, hdr, m, NakReason::Rnr);
                }
                return;
            }
        };
        let mut qp = qp_rc.borrow_mut();
        qp.sr_recv.insert(
            m,
            RecvAssembly {
                msg_id: m,
                wqe: rwqe,
                received: 0,
                total_len,
                mem: mr.mem,
            },
        );
        if let Some(rx) = qp.retx.as_mut() {
            rx.sr.bound(m);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sr_handle_send_frag(
    inner: &Rc<NicInner>,
    qp_rc: &Rc<RefCell<Qp>>,
    hdr: PktHdr,
    msg_id: u64,
    frag: u32,
    nfrags: u32,
    total_len: usize,
    offset: usize,
    payload: PayloadSeg,
    imm: Option<u32>,
) {
    let on_frag = || {
        let mut qp = qp_rc.borrow_mut();
        let rx = qp.retx.as_mut().expect("SR mode implies armed");
        let d = rx.sr.on_frag(msg_id, frag, nfrags, SrKind::Send);
        rx.sr.note_total_len(msg_id, total_len);
        d
    };
    let mut d = on_frag();
    if let Some((m, bits)) = d.sack {
        sack(inner, hdr, m, bits);
    }
    if matches!(d.action, SrAction::Unbound) {
        // Binding may now be possible (this fragment classified its
        // message); bind what the floor allows, then retry the fragment.
        sr_bind_ready(inner, qp_rc, hdr, (msg_id, frag));
        d = on_frag();
        if let Some((m, bits)) = d.sack {
            sack(inner, hdr, m, bits);
        }
    }
    let completes = match d.action {
        SrAction::Duplicate { reack } => {
            if reack {
                ack(inner, hdr, msg_id);
            }
            return;
        }
        SrAction::Unbound => return,
        SrAction::Install { completes } => completes,
    };
    let (dst_addr, mem, rwr_id) = {
        let mut qp = qp_rc.borrow_mut();
        let Some(asm) = qp.sr_recv.get_mut(&msg_id) else {
            return; // reassembly flushed while the fragment was in flight
        };
        asm.received += payload.len();
        let out = (
            asm.wqe.sge.addr + offset as u64,
            asm.mem.clone(),
            asm.wqe.wr_id,
        );
        if completes {
            qp.sr_recv.remove(&msg_id);
        }
        out
    };
    let dma_done = inner.dma.enqueue(DmaDir::ToHost, payload.len());
    let inner2 = Rc::clone(inner);
    let qp2 = Rc::clone(qp_rc);
    inner.sim.schedule_at(dma_done, move |_| {
        mem.install(dst_addr, &payload)
            .expect("validated landing zone");
        if completes {
            let mut qp = qp2.borrow_mut();
            qp.rx_msgs += 1;
            qp.rx_bytes += total_len as u64;
            let cqe = Cqe {
                wr_id: rwr_id,
                status: CqeStatus::Success,
                opcode: if imm.is_some() {
                    CqeOpcode::RecvWithImm
                } else {
                    CqeOpcode::Recv
                },
                byte_len: total_len,
                qp: qp.num,
                imm,
                src_qp: Some(hdr.src_qpn),
                src_node: Some(hdr.src_node),
            };
            let recv_cq = qp.recv_cq.clone();
            drop(qp);
            deliver_cqe(&inner2, &recv_cq, cqe);
            ack(&inner2, hdr, msg_id);
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn sr_handle_write_frag(
    inner: &Rc<NicInner>,
    qp_rc: &Rc<RefCell<Qp>>,
    hdr: PktHdr,
    msg_id: u64,
    frag: u32,
    nfrags: u32,
    total_len: usize,
    raddr: u64,
    rkey: crate::types::RKey,
    offset: usize,
    payload: PayloadSeg,
    imm: Option<u32>,
) {
    // Validate before touching the window so a rejected fragment never
    // marks its receive bit: the whole-message range on first contact
    // (go-back-N checks it on fragment 0), then the fragment's own range.
    let fresh = {
        let qp = qp_rc.borrow();
        !qp.retx
            .as_ref()
            .expect("SR mode implies armed")
            .sr
            .knows(msg_id)
    };
    if fresh
        && inner
            .mrs
            .check_remote(rkey, raddr, total_len, true)
            .is_err()
    {
        if let Some(rx) = qp_rc.borrow_mut().retx.as_mut() {
            rx.sr.poison(msg_id, nfrags, SrKind::Write);
        }
        nak(inner, hdr, msg_id, NakReason::RemoteAccess);
        return;
    }
    let mr = match inner
        .mrs
        .check_remote(rkey, raddr + offset as u64, payload.len(), true)
    {
        Ok(mr) => mr,
        Err(_) => {
            nak(inner, hdr, msg_id, NakReason::RemoteAccess);
            return;
        }
    };
    // Write-with-immediate consumes a receive WQE at completion, and the
    // out-of-order window has no rewind — so check availability before
    // committing the completing fragment, and RNR-NAK it back instead.
    if imm.is_some() {
        let rnr = {
            let qp = qp_rc.borrow();
            let rx = qp.retx.as_ref().expect("SR mode implies armed");
            rx.sr.completes_with(msg_id, frag, nfrags) && qp.rq.is_empty()
        };
        if rnr {
            nak(inner, hdr, msg_id, NakReason::Rnr);
            return;
        }
    }
    let d = {
        let mut qp = qp_rc.borrow_mut();
        let rx = qp.retx.as_mut().expect("SR mode implies armed");
        rx.sr.on_frag(msg_id, frag, nfrags, SrKind::Write)
    };
    if let Some((m, bits)) = d.sack {
        sack(inner, hdr, m, bits);
    }
    let completes = match d.action {
        SrAction::Duplicate { reack } => {
            if reack {
                ack(inner, hdr, msg_id);
            }
            return;
        }
        SrAction::Unbound => return, // unreachable: writes never bind
        SrAction::Install { completes } => completes,
    };
    let dma_done = inner.dma.enqueue(DmaDir::ToHost, payload.len());
    let inner2 = Rc::clone(inner);
    let qp2 = Rc::clone(qp_rc);
    let dst = raddr + offset as u64;
    inner.sim.schedule_at(dma_done, move |_| {
        mr.mem
            .install(dst, &payload)
            .expect("validated remote range");
        if completes {
            {
                let mut qp = qp2.borrow_mut();
                qp.rx_msgs += 1;
                qp.rx_bytes += total_len as u64;
            }
            if let Some(imm) = imm {
                let popped = qp2.borrow_mut().rq.pop_front();
                match popped {
                    Some(rwqe) => {
                        let (cq, cqe) = {
                            let qp = qp2.borrow();
                            (
                                qp.recv_cq.clone(),
                                Cqe {
                                    wr_id: rwqe.wr_id,
                                    status: CqeStatus::Success,
                                    opcode: CqeOpcode::RecvWithImm,
                                    byte_len: total_len,
                                    qp: qp.num,
                                    imm: Some(imm),
                                    src_qp: Some(hdr.src_qpn),
                                    src_node: Some(hdr.src_node),
                                },
                            )
                        };
                        deliver_cqe(&inner2, &cq, cqe);
                    }
                    None => {
                        // Pre-checked at arrival; only two immediates
                        // completing in the same instant can land here.
                        // Withhold the ACK — the replay's duplicate pass
                        // re-ACKs, degrading to a lost-CQE corner rather
                        // than corrupting WQE pairing.
                        nak(&inner2, hdr, msg_id, NakReason::Rnr);
                        return;
                    }
                }
            }
            ack(&inner2, hdr, msg_id);
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn handle_write_frag(
    inner: &Rc<NicInner>,
    qp_rc: &Rc<RefCell<Qp>>,
    hdr: PktHdr,
    msg_id: u64,
    frag: u32,
    nfrags: u32,
    total_len: usize,
    raddr: u64,
    rkey: crate::types::RKey,
    offset: usize,
    payload: PayloadSeg,
    imm: Option<u32>,
) {
    if sr_mode(&qp_rc.borrow()) {
        return sr_handle_write_frag(
            inner, qp_rc, hdr, msg_id, frag, nfrags, total_len, raddr, rkey, offset, payload, imm,
        );
    }
    match rx_gate(inner, qp_rc, hdr, msg_id, frag, frag + 1 == nfrags) {
        RxSeq::Accept => {}
        RxSeq::Drop { .. } => return,
        RxSeq::DupAck => {
            ack(inner, hdr, msg_id);
            return;
        }
    }
    if qp_rc.borrow().drop_msg == Some(msg_id) {
        if frag + 1 == nfrags {
            qp_rc.borrow_mut().drop_msg = None;
        }
        return;
    }
    let mr = if frag == 0 {
        match inner.mrs.check_remote(rkey, raddr, total_len, true) {
            Ok(mr) => mr,
            Err(_) => {
                if nfrags > 1 {
                    qp_rc.borrow_mut().drop_msg = Some(msg_id);
                }
                nak(inner, hdr, msg_id, NakReason::RemoteAccess);
                return;
            }
        }
    } else {
        // Range for the whole message was validated on fragment 0.
        match inner
            .mrs
            .check_remote(rkey, raddr + offset as u64, payload.len(), true)
        {
            Ok(mr) => mr,
            Err(_) => {
                nak(inner, hdr, msg_id, NakReason::RemoteAccess);
                return;
            }
        }
    };

    let last = frag + 1 == nfrags;
    let dma_done = inner.dma.enqueue(DmaDir::ToHost, payload.len());
    let inner2 = Rc::clone(inner);
    let qp2 = Rc::clone(qp_rc);
    let dst = raddr + offset as u64;
    inner.sim.schedule_at(dma_done, move |_| {
        mr.mem
            .install(dst, &payload)
            .expect("validated remote range");
        if last {
            {
                let mut qp = qp2.borrow_mut();
                qp.rx_msgs += 1;
                qp.rx_bytes += total_len as u64;
            }
            if let Some(imm) = imm {
                // Write-with-immediate consumes a receive WQE.
                let popped = qp2.borrow_mut().rq.pop_front();
                match popped {
                    Some(rwqe) => {
                        let (cq, cqe) = {
                            let qp = qp2.borrow();
                            (
                                qp.recv_cq.clone(),
                                Cqe {
                                    wr_id: rwqe.wr_id,
                                    status: CqeStatus::Success,
                                    opcode: CqeOpcode::RecvWithImm,
                                    byte_len: total_len,
                                    qp: qp.num,
                                    imm: Some(imm),
                                    src_qp: Some(hdr.src_qpn),
                                    src_node: Some(hdr.src_node),
                                },
                            )
                        };
                        deliver_cqe(&inner2, &cq, cqe);
                    }
                    None => {
                        // DMA completion runs after the gate advanced; the
                        // replayed write re-lands idempotently and retries
                        // the immediate's receive-WQE consumption.
                        qp2.borrow_mut().rx_rnr_rewind(msg_id);
                        nak(&inner2, hdr, msg_id, NakReason::Rnr);
                        return;
                    }
                }
            }
            ack(&inner2, hdr, msg_id);
        }
    });
}

fn handle_read_req(
    inner: &Rc<NicInner>,
    qp_rc: &Rc<RefCell<Qp>>,
    hdr: PktHdr,
    msg_id: u64,
    raddr: u64,
    rkey: crate::types::RKey,
    len: usize,
) {
    let dup = if sr_mode(&qp_rc.borrow()) {
        // Single-packet message through the out-of-order window: served on
        // arrival; a duplicate means the response (or its tail) was lost,
        // so re-serve idempotently without re-counting.
        let d = {
            let mut qp = qp_rc.borrow_mut();
            let rx = qp.retx.as_mut().expect("SR mode implies armed");
            rx.sr.on_frag(msg_id, 0, 1, SrKind::Read)
        };
        if let Some((m, bits)) = d.sack {
            sack(inner, hdr, m, bits);
        }
        match d.action {
            SrAction::Install { .. } => false,
            SrAction::Duplicate { .. } => true,
            SrAction::Unbound => return, // unreachable: reads never bind
        }
    } else {
        match rx_gate(inner, qp_rc, hdr, msg_id, 0, true) {
            RxSeq::Accept => false,
            RxSeq::Drop { .. } => return,
            // Replayed read request: the response (or its tail) was lost.
            // Re-streaming is idempotent — the requester discards fragments
            // it already landed — so serve it again without re-counting.
            RxSeq::DupAck => true,
        }
    };
    let mr = match inner.mrs.check_remote(rkey, raddr, len, false) {
        Ok(mr) => mr,
        Err(e) => {
            let reason = match e {
                MrError::OutOfRange => NakReason::RemoteAccess,
                _ => NakReason::RemoteAccess,
            };
            nak(inner, hdr, msg_id, reason);
            return;
        }
    };
    if !dup {
        let mut qp = qp_rc.borrow_mut();
        qp.rx_msgs += 1;
        qp.rx_bytes += len as u64;
    }
    // Stream the response: one task per read (responder CPU stays idle —
    // the property Fig. 3 depends on).
    let inner2 = Rc::clone(inner);
    let qp2 = Rc::clone(qp_rc);
    inner.sim.spawn(async move {
        let mtu = inner2.spec.nic.mtu;
        let header = inner2.spec.nic.header_bytes;
        let nfrags = inner2.spec.fragments(len) as u32;
        for frag in 0..nfrags {
            let offset = frag as usize * mtu;
            let flen = (len - offset).min(mtu);
            // DCQCN pacing: responder fragments go through the same per-QP
            // rate-limiter gate as the TX scheduler's send/write path, so
            // a read-heavy workload cannot stream past its CNP-cut rate.
            // Gate *before* taking a window credit (same order as the TX
            // scheduler): a throttled QP must not park the NIC-global
            // in-flight window for its inter-packet gap.
            loop {
                let now = inner2.sim.now();
                let gate = qp2.borrow_mut().dcqcn.as_mut().and_then(|d| d.gate(now));
                match gate {
                    Some(at) => inner2.sim.sleep_until(at).await,
                    None => break,
                }
            }
            {
                let now = inner2.sim.now();
                let mut qp = qp2.borrow_mut();
                if let Some(d) = qp.dcqcn.as_mut() {
                    d.charge(now, flen + header);
                }
            }
            inner2.tx_window.acquire(1).await;
            let payload = mr
                .mem
                .read(raddr + offset as u64, flen)
                .expect("validated remote range");
            let ready = inner2.dma.enqueue(DmaDir::FromHost, flen);
            let inner3 = Rc::clone(&inner2);
            let resp = Packet {
                src_node: inner2.node,
                dst_node: hdr.src_node,
                src_qpn: hdr.dst_qpn,
                dst_qpn: hdr.src_qpn,
                ecn: false,
                kind: PacketKind::ReadResp {
                    msg_id,
                    frag,
                    nfrags,
                    offset,
                    payload,
                },
            };
            inner2.sim.schedule_at(ready, move |_| {
                transmit(&inner3, resp);
                inner3.tx_window.release(1);
            });
            inner2
                .tx_pipeline
                .use_for(inner2.pipe_cost(inner2.spec.nic.tx_pkt_ns))
                .await;
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn handle_read_resp(
    inner: &Rc<NicInner>,
    qp_rc: &Rc<RefCell<Qp>>,
    msg_id: u64,
    frag: u32,
    nfrags: u32,
    offset: usize,
    payload: PayloadSeg,
) {
    let (pr, last) = {
        let mut qp = qp_rc.borrow_mut();
        let mode = qp.retx.as_ref().map(|rx| rx.cfg.mode);
        match qp.pending_reads.get_mut(&msg_id) {
            Some(pr) => {
                let last = match mode {
                    None => frag + 1 == nfrags,
                    Some(RetxMode::Sr) if nfrags <= 64 => {
                        // Out-of-order bitmap: duplicates drop, holes fill
                        // from the re-served stream, completion fires when
                        // the bitmap is full.
                        if pr.got >> frag & 1 == 1 {
                            return;
                        }
                        pr.got |= 1 << frag;
                        pr.got.count_ones() == nfrags
                    }
                    _ => {
                        // Go-back-N (and >64-fragment reads under
                        // selective repeat): in-order gate — drop replay
                        // duplicates and post-loss tails; the retransmit
                        // timer re-issues the request.
                        if frag != pr.next_frag {
                            return;
                        }
                        pr.next_frag += 1;
                        frag + 1 == nfrags
                    }
                };
                (pr.clone(), last)
            }
            None => return,
        }
    };
    let mr = match inner
        .mrs
        .check_local(pr.lkey, pr.addr + offset as u64, payload.len(), true)
    {
        Ok(mr) => mr,
        Err(_) => {
            // Landing buffer vanished mid-read: error completion.
            let mut qp = qp_rc.borrow_mut();
            qp.pending_reads.remove(&msg_id);
            qp.outstanding_reads -= 1;
            push_cqe(
                &qp.send_cq,
                Cqe {
                    wr_id: pr.wr_id,
                    status: CqeStatus::LocalProtErr,
                    opcode: CqeOpcode::RdmaRead,
                    byte_len: 0,
                    qp: qp.num,
                    imm: None,
                    src_qp: None,
                    src_node: None,
                },
            );
            return;
        }
    };
    let dma_done = inner.dma.enqueue(DmaDir::ToHost, payload.len());
    let inner2 = Rc::clone(inner);
    let qp2 = Rc::clone(qp_rc);
    let dst = pr.addr + offset as u64;
    inner.sim.schedule_at(dma_done, move |_| {
        mr.mem
            .install(dst, &payload)
            .expect("validated landing zone");
        if last {
            let qpn = {
                let mut qp = qp2.borrow_mut();
                qp.pending_reads.remove(&msg_id);
                qp.outstanding_reads -= 1;
                if qp.retx.as_mut().is_some_and(|rx| rx.ack(msg_id)) {
                    arm_retx_timer(&inner2, &mut qp);
                }
                qp.tx_msgs += 1;
                qp.tx_bytes += pr.len as u64;
                if pr.signaled {
                    let cqe = Cqe {
                        wr_id: pr.wr_id,
                        status: CqeStatus::Success,
                        opcode: CqeOpcode::RdmaRead,
                        byte_len: pr.len,
                        qp: qp.num,
                        imm: None,
                        src_qp: None,
                        src_node: None,
                    };
                    deliver_cqe(&inner2, &qp.send_cq.clone(), cqe);
                }
                if qp.stalled_rd {
                    qp.stalled_rd = false;
                    Some(qp.num)
                } else {
                    None
                }
            };
            if let Some(qpn) = qpn {
                ring_qp(&inner2, qpn);
            }
        }
    });
}

fn handle_ack(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>, msg_id: u64) {
    let mut qp = qp_rc.borrow_mut();
    // ACK progress shrinks the go-back-N window, resets the retry count,
    // and re-covers the (new) oldest unacked message with a fresh timer.
    if qp.retx.as_mut().is_some_and(|rx| rx.ack(msg_id)) {
        arm_retx_timer(inner, &mut qp);
    }
    if let Some(pa) = qp.pending_acks.remove(&msg_id) {
        if pa.signaled {
            let cqe = Cqe {
                wr_id: pa.wr_id,
                status: CqeStatus::Success,
                opcode: pa.opcode.into(),
                byte_len: pa.byte_len,
                qp: qp.num,
                imm: None,
                src_qp: None,
                src_node: None,
            };
            let cq = qp.send_cq.clone();
            drop(qp);
            deliver_cqe(inner, &cq, cqe);
        }
    }
}

/// SACK from a selective-repeat responder: remember which fragments of
/// the first missing message it already holds (the replay pass skips
/// them), then replay the unacked window from that message. Individually
/// ACKed messages are no longer in the window, so — unlike go-back-N —
/// only messages actually missing something go back on the wire.
fn handle_sack(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>, msg_id: u64, received: u64) {
    {
        let mut qp = qp_rc.borrow_mut();
        let Some(rx) = qp.retx.as_mut() else { return };
        if received != 0 {
            rx.rtx_mask.insert(msg_id, received);
        }
    }
    retx_go_back(inner, qp_rc, msg_id);
}

fn handle_nak(inner: &Rc<NicInner>, qp_rc: &Rc<RefCell<Qp>>, msg_id: u64, reason: NakReason) {
    if reason == NakReason::Sequence {
        // Recoverable: the responder is missing `msg_id` onward — go back
        // to it and replay, instead of erroring the QP.
        retx_go_back(inner, qp_rc, msg_id);
        return;
    }
    // Receiver-not-ready with retransmission armed is recoverable too:
    // back off and replay, hoping the application posts a receive buffer
    // in the meantime. Only budget exhaustion (or an unarmed QP, the
    // seed's behavior) falls through to the fatal path below.
    if reason == NakReason::Rnr && rnr_defer(inner, qp_rc, msg_id) {
        return;
    }
    let mut qp = qp_rc.borrow_mut();
    let status = match reason {
        NakReason::Rnr => CqeStatus::RnrRetryExceeded,
        NakReason::RemoteAccess | NakReason::LengthError => CqeStatus::RemoteAccessErr,
        NakReason::Sequence => unreachable!("handled above"),
    };
    let mut terminal = false;
    if let Some(pa) = qp.pending_acks.remove(&msg_id) {
        terminal = true;
        push_cqe(
            &qp.send_cq,
            Cqe {
                wr_id: pa.wr_id,
                status,
                opcode: pa.opcode.into(),
                byte_len: 0,
                qp: qp.num,
                imm: None,
                src_qp: None,
                src_node: None,
            },
        );
    } else if let Some(pr) = qp.pending_reads.remove(&msg_id) {
        terminal = true;
        qp.outstanding_reads -= 1;
        push_cqe(
            &qp.send_cq,
            Cqe {
                wr_id: pr.wr_id,
                status,
                opcode: CqeOpcode::RdmaRead,
                byte_len: 0,
                qp: qp.num,
                imm: None,
                src_qp: None,
                src_node: None,
            },
        );
    }
    // If the NAKed WQE just got its terminal CQE, a mid-segmentation
    // replay of it must not produce a second (flush) completion.
    if terminal && qp.tx.as_ref().is_some_and(|tx| tx.msg_id == msg_id) {
        qp.tx = None;
    }
    flush_qp(inner, &mut qp);
}
