//! Policy chains under concurrent multi-QP load.
//!
//! The unit tests in `src/policies/` exercise each policy on trickle
//! traffic (hand-built contexts, one op at a time). These tests drive many
//! QPs concurrently through one kernel's CoRD driver — quota exhaustion
//! and release under contention, token-bucket shaping of aggregate
//! throughput, and QoS arbitration between priority classes — the regime
//! the `cord-workload` subsystem runs the policies in.

use std::rc::Rc;

use cord_hw::{system_l, Core, CoreId, Dvfs, GuestMem, MachineSpec, Noise};
use cord_kern::{Kernel, QosClass, QosPolicy, QuotaPolicy, RateLimitPolicy};
use cord_nic::{build_cluster, Access, Cq, QpNum, RKey, SendWqe, Sge, Transport, VerbsError, WrId};
use cord_sim::{Sim, SimDuration, Trace};

/// One sender: a connected RC QP on node 0 (through `kern`) with its own
/// core and send CQ, targeting a registered sink buffer on node 1.
struct Sender {
    core: Core,
    scq: Cq,
    qpn: QpNum,
    raddr: u64,
    rkey: RKey,
}

fn setup(sim: &Sim, spec: &MachineSpec, n_qps: usize) -> (Kernel, Vec<Sender>, GuestMem) {
    let nics = build_cluster(sim, spec, Trace::disabled());
    let kern = Kernel::new(sim, spec, nics[0].clone(), Trace::disabled());
    let mem = GuestMem::new();
    let sink_mem = GuestMem::new();
    let mut senders = Vec::new();
    for i in 0..n_qps {
        let scq = nics[0].create_cq(4096);
        let rcq = nics[0].create_cq(4096);
        let qpn = nics[0].create_qp(Transport::Rc, scq.clone(), rcq);
        let scq2 = nics[1].create_cq(64);
        let rcq2 = nics[1].create_cq(64);
        let qpn2 = nics[1].create_qp(Transport::Rc, scq2, rcq2);
        nics[0].connect(qpn, Some((1, qpn2))).unwrap();
        nics[1].connect(qpn2, Some((0, qpn))).unwrap();
        let sink = sink_mem.alloc(1 << 20, 0);
        let sink_mr = nics[1]
            .mr_table()
            .register(sink_mem.clone(), sink, Access::all());
        let core = Core::new(
            sim,
            CoreId {
                node: 0,
                core: i % spec.cpu.cores,
            },
            spec,
            Dvfs::new(sim, spec.dvfs.clone()),
            Noise::disabled(),
        );
        senders.push(Sender {
            core,
            scq,
            qpn,
            raddr: sink.addr,
            rkey: sink_mr.rkey,
        });
    }
    (kern, senders, mem)
}

fn write_wqe(s: &Sender, sge: Sge, wr: u64) -> SendWqe {
    SendWqe::write(WrId(wr), sge, s.raddr, s.rkey)
}

/// Quota exhaustion: each QP may hold at most `CAP` un-reaped ops. Bursting
/// past the cap is denied per QP; reaping completions restores the budget —
/// concurrently on eight QPs sharing one chain.
#[test]
fn quota_exhausts_and_releases_per_qp_under_concurrency() {
    const CAP: usize = 4;
    const QPS: usize = 8;
    let sim = Sim::new();
    let spec = system_l();
    let (kern, senders, mem) = setup(&sim, &spec, QPS);
    kern.add_policy(Rc::new(QuotaPolicy::new(CAP)));
    let buf = mem.alloc(256, 1);
    let mr = kern
        .nic()
        .mr_table()
        .register(mem.clone(), buf, Access::all());
    let sge = Sge {
        addr: buf.addr,
        len: 256,
        lkey: mr.lkey,
    };

    let sim2 = sim.clone();
    let results = sim.block_on(async move {
        let mut handles = Vec::new();
        for s in senders {
            let kern = kern.clone();
            handles.push(sim2.spawn(async move {
                // Burst CAP+3 posts without reaping: exactly 3 denials.
                let mut denied = 0;
                for i in 0..CAP + 3 {
                    match kern
                        .cord_post_send(&s.core, s.qpn, write_wqe(&s, sge, i as u64))
                        .await
                    {
                        Ok(()) => {}
                        Err(VerbsError::PolicyDenied(_)) => denied += 1,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                // Reap all CAP completions, releasing the budget.
                let mut reaped = 0;
                while reaped < CAP {
                    let cqes = kern.cord_poll_cq(&s.core, &s.scq, 16).await;
                    reaped += cqes.len();
                    if reaped < CAP {
                        s.scq.wait_push().await;
                    }
                }
                // Budget restored: a full burst is admitted again.
                let mut readmitted = 0;
                for i in 0..CAP {
                    if kern
                        .cord_post_send(&s.core, s.qpn, write_wqe(&s, sge, 100 + i as u64))
                        .await
                        .is_ok()
                    {
                        readmitted += 1;
                    }
                }
                (denied, readmitted)
            }));
        }
        let mut out = Vec::new();
        for h in handles {
            out.push(h.await);
        }
        out
    });

    for (i, (denied, readmitted)) in results.iter().enumerate() {
        assert_eq!(*denied, 3, "qp {i}: exactly the over-cap posts are denied");
        assert_eq!(
            *readmitted, CAP,
            "qp {i}: budget fully restored after reaping"
        );
    }
}

/// Token-bucket shaping: four QPs blasting 64 KiB writes through one
/// 0.8 Gbit/s limiter are collectively held to the configured rate.
#[test]
fn rate_limit_shapes_aggregate_multi_qp_throughput() {
    const QPS: usize = 4;
    const WRITES: usize = 25;
    const LEN: usize = 64 * 1024;
    let gbps = 0.8;

    let run = |limited: bool| -> f64 {
        let sim = Sim::new();
        let spec = system_l();
        let (kern, senders, mem) = setup(&sim, &spec, QPS);
        if limited {
            kern.add_policy(Rc::new(RateLimitPolicy::new(gbps, 1e9)));
        }
        let buf = mem.alloc(LEN, 7);
        let mr = kern
            .nic()
            .mr_table()
            .register(mem.clone(), buf, Access::all());
        let sge = Sge {
            addr: buf.addr,
            len: LEN,
            lkey: mr.lkey,
        };
        let sim2 = sim.clone();
        sim.block_on(async move {
            let mut handles = Vec::new();
            for s in senders {
                let kern = kern.clone();
                handles.push(sim2.spawn(async move {
                    for i in 0..WRITES {
                        kern.cord_post_send(&s.core, s.qpn, write_wqe(&s, sge, i as u64))
                            .await
                            .unwrap();
                        // Reap as we go so the SQ/CQ never bind.
                        let mut done = 0;
                        while done == 0 {
                            done = kern.cord_poll_cq(&s.core, &s.scq, 16).await.len();
                            if done == 0 {
                                s.scq.wait_push().await;
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.await;
            }
            s_now(&sim2)
        })
    };

    let unlimited_s = run(false);
    let limited_s = run(true);
    let bytes = (QPS * WRITES * LEN) as f64;
    let ideal_s = bytes * 8.0 / (gbps * 1e9);
    assert!(
        limited_s >= ideal_s * 0.8,
        "shaped run must approach the token budget: {limited_s:.4}s vs ideal {ideal_s:.4}s"
    );
    assert!(
        limited_s < ideal_s * 1.5,
        "limiter must not over-throttle: {limited_s:.4}s vs ideal {ideal_s:.4}s"
    );
    assert!(
        unlimited_s < limited_s / 5.0,
        "without the limiter the same load is far faster: {unlimited_s:.4}s vs {limited_s:.4}s"
    );
}

fn s_now(sim: &Sim) -> f64 {
    sim.now().as_secs_f64()
}

/// QoS arbitration: while a high-priority QP is active, a low-priority
/// QP's posts are stalled (priority inversion avoided); once the
/// high-priority flow goes quiet, the low class flows at full speed again
/// — and nothing is ever dropped.
#[test]
fn qos_stalls_low_priority_only_during_high_activity() {
    let sim = Sim::new();
    let spec = system_l();
    let (kern, mut senders, mem) = setup(&sim, &spec, 2);
    let qos = Rc::new(QosPolicy::new(
        SimDuration::from_us(10),
        SimDuration::from_us(2),
    ));
    let hi = senders.remove(0);
    let lo = senders.remove(0);
    qos.classify(hi.qpn.0, QosClass::High);
    qos.classify(lo.qpn.0, QosClass::Low);
    kern.add_policy(qos);

    let buf = mem.alloc(64, 1);
    let mr = kern
        .nic()
        .mr_table()
        .register(mem.clone(), buf, Access::all());
    let sge = Sge {
        addr: buf.addr,
        len: 64,
        lkey: mr.lkey,
    };

    let sim2 = sim.clone();
    let (lo_contended_us, lo_quiet_us, lo_posts) = sim.block_on(async move {
        // High-priority chatter for the first 200 µs.
        let hi_task = {
            let kern = kern.clone();
            let sim3 = sim2.clone();
            sim2.spawn(async move {
                for i in 0..100u64 {
                    kern.cord_post_send(&hi.core, hi.qpn, write_wqe(&hi, sge, i))
                        .await
                        .unwrap();
                    let _ = kern.cord_poll_cq(&hi.core, &hi.scq, 16).await;
                    sim3.sleep(SimDuration::from_us(2)).await;
                }
            })
        };
        // Low priority posts during contention...
        let mut contended = 0.0;
        let mut posts = 0u64;
        for i in 0..20u64 {
            let t0 = sim2.now();
            kern.cord_post_send(&lo.core, lo.qpn, write_wqe(&lo, sge, 1000 + i))
                .await
                .unwrap();
            contended += sim2.now().since(t0).as_us_f64();
            posts += 1;
            let _ = kern.cord_poll_cq(&lo.core, &lo.scq, 16).await;
        }
        hi_task.await;
        // ... and again after the high flow has gone quiet.
        sim2.sleep(SimDuration::from_us(50)).await;
        let mut quiet = 0.0;
        for i in 0..20u64 {
            let t0 = sim2.now();
            kern.cord_post_send(&lo.core, lo.qpn, write_wqe(&lo, sge, 2000 + i))
                .await
                .unwrap();
            quiet += sim2.now().since(t0).as_us_f64();
            posts += 1;
            let _ = kern.cord_poll_cq(&lo.core, &lo.scq, 16).await;
        }
        (contended / 20.0, quiet / 20.0, posts)
    });

    assert_eq!(lo_posts, 40, "QoS delays, never drops");
    assert!(
        lo_contended_us >= lo_quiet_us + 1.5,
        "low-priority posts must be stalled under high activity: \
         contended {lo_contended_us:.2} µs vs quiet {lo_quiet_us:.2} µs"
    );
    assert!(
        lo_quiet_us < 1.0,
        "after high goes quiet, low flows at base cost: {lo_quiet_us:.2} µs"
    );
}

/// A full chain (qos + rate limit + quota) stays consistent when eight QPs
/// hammer it concurrently: every op is either completed or denied, and the
/// kernel's counters agree with the per-QP outcomes.
#[test]
fn full_chain_is_consistent_under_concurrent_load() {
    const QPS: usize = 8;
    const OPS: usize = 30;
    let sim = Sim::new();
    let spec = system_l();
    let (kern, senders, mem) = setup(&sim, &spec, QPS);
    let qos = Rc::new(QosPolicy::new(
        SimDuration::from_us(5),
        SimDuration::from_us(1),
    ));
    for (i, s) in senders.iter().enumerate() {
        qos.classify(
            s.qpn.0,
            if i % 2 == 0 {
                QosClass::High
            } else {
                QosClass::Low
            },
        );
    }
    kern.add_policy(qos);
    kern.add_policy(Rc::new(RateLimitPolicy::new(20.0, 1e8)));
    kern.add_policy(Rc::new(QuotaPolicy::new(4)));

    let buf = mem.alloc(4096, 3);
    let mr = kern
        .nic()
        .mr_table()
        .register(mem.clone(), buf, Access::all());
    let sge = Sge {
        addr: buf.addr,
        len: 4096,
        lkey: mr.lkey,
    };

    let sim2 = sim.clone();
    let kern2 = kern.clone();
    let (completed, denied) = sim.block_on(async move {
        let mut handles = Vec::new();
        for s in senders {
            let kern = kern2.clone();
            handles.push(sim2.spawn(async move {
                let mut ok = 0u64;
                let mut denied = 0u64;
                let mut reaped = 0u64;
                for i in 0..OPS {
                    match kern
                        .cord_post_send(&s.core, s.qpn, write_wqe(&s, sge, i as u64))
                        .await
                    {
                        Ok(()) => ok += 1,
                        Err(VerbsError::PolicyDenied(_)) => denied += 1,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                    reaped += kern.cord_poll_cq(&s.core, &s.scq, 16).await.len() as u64;
                }
                while reaped < ok {
                    let got = kern.cord_poll_cq(&s.core, &s.scq, 16).await.len() as u64;
                    reaped += got;
                    if got == 0 {
                        s.scq.wait_push().await;
                    }
                }
                (ok, denied)
            }));
        }
        let mut ok = 0;
        let mut denied = 0;
        for h in handles {
            let (o, d) = h.await;
            ok += o;
            denied += d;
        }
        (ok, denied)
    });

    assert_eq!(
        completed + denied,
        (QPS * OPS) as u64,
        "every op is accounted for"
    );
    let (posts, _, kernel_denials) = kern.counters();
    assert_eq!(posts, (QPS * OPS) as u64, "kernel saw every post");
    assert_eq!(kernel_denials, denied, "kernel denial counter agrees");
    assert!(completed > 0, "the chain admits traffic");
}
