//! Priority QoS: low-priority QPs are briefly stalled while high-priority
//! traffic is active, giving latency-sensitive flows the NIC first — the
//! Justitia-style multi-tenancy control of §1 [90], done with two branch
//! instructions in the kernel instead of dedicated arbitration cores.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use cord_nic::SendWqe;
use cord_sim::{SimDuration, SimTime};

use crate::policy::{CordPolicy, PolicyCtx, PolicyDecision};

/// Priority class of a QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosClass {
    High,
    Low,
}

pub struct QosPolicy {
    classes: RefCell<HashMap<u32, QosClass>>,
    /// Most recent high-priority activity.
    last_high: Cell<SimTime>,
    /// Low-priority ops within this window of high activity are stalled.
    guard_window: SimDuration,
    /// How long a stalled low-priority op waits.
    penalty: SimDuration,
    cost: SimDuration,
}

impl QosPolicy {
    pub fn new(guard_window: SimDuration, penalty: SimDuration) -> Self {
        QosPolicy {
            classes: RefCell::new(HashMap::new()),
            last_high: Cell::new(SimTime::ZERO),
            guard_window,
            penalty,
            cost: SimDuration::from_ns(10),
        }
    }

    pub fn classify(&self, qpn: u32, class: QosClass) {
        self.classes.borrow_mut().insert(qpn, class);
    }

    fn class_of(&self, qpn: u32) -> QosClass {
        self.classes
            .borrow()
            .get(&qpn)
            .copied()
            .unwrap_or(QosClass::High)
    }
}

impl CordPolicy for QosPolicy {
    fn name(&self) -> &'static str {
        "qos"
    }

    fn on_post_send(&self, ctx: &PolicyCtx, _wqe: &SendWqe) -> PolicyDecision {
        match self.class_of(ctx.qpn.0) {
            QosClass::High => {
                self.last_high.set(ctx.now);
                PolicyDecision::Allow
            }
            QosClass::Low => {
                let since = ctx.now.saturating_since(self.last_high.get());
                if self.last_high.get() > SimTime::ZERO && since < self.guard_window {
                    PolicyDecision::Delay(self.penalty)
                } else {
                    PolicyDecision::Allow
                }
            }
        }
    }

    fn cost(&self) -> SimDuration {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_nic::{LKey, QpNum, Sge, WrId};

    fn ctx(qpn: u32, at_ns: u64) -> PolicyCtx {
        PolicyCtx {
            node: 0,
            qpn: QpNum(qpn),
            now: SimTime(at_ns * 1000),
        }
    }

    fn wqe() -> SendWqe {
        SendWqe::send(
            WrId(1),
            Sge {
                addr: 0x1_0000,
                len: 8,
                lkey: LKey(1),
            },
        )
    }

    fn policy() -> QosPolicy {
        let p = QosPolicy::new(SimDuration::from_us(10), SimDuration::from_us(2));
        p.classify(1, QosClass::High);
        p.classify(2, QosClass::Low);
        p
    }

    #[test]
    fn high_priority_always_allowed() {
        let p = policy();
        assert_eq!(p.on_post_send(&ctx(1, 0), &wqe()), PolicyDecision::Allow);
        assert_eq!(p.on_post_send(&ctx(1, 5), &wqe()), PolicyDecision::Allow);
    }

    #[test]
    fn low_priority_stalled_during_high_activity() {
        let p = policy();
        p.on_post_send(&ctx(1, 1000), &wqe());
        assert_eq!(
            p.on_post_send(&ctx(2, 2000), &wqe()),
            PolicyDecision::Delay(SimDuration::from_us(2))
        );
        // After the guard window, low priority flows again.
        assert_eq!(
            p.on_post_send(&ctx(2, 20_000), &wqe()),
            PolicyDecision::Allow
        );
    }

    #[test]
    fn unclassified_defaults_to_high() {
        let p = policy();
        assert_eq!(p.on_post_send(&ctx(42, 0), &wqe()), PolicyDecision::Allow);
    }

    #[test]
    fn low_priority_unaffected_before_any_high_traffic() {
        let p = policy();
        assert_eq!(p.on_post_send(&ctx(2, 5), &wqe()), PolicyDecision::Allow);
    }
}
