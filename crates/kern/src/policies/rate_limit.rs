//! Token-bucket rate limiting of a tenant's RDMA traffic — the
//! fine-grained resource control the paper cites FreeFlow/Justitia for
//! (§1, [30, 44]), impossible with kernel bypass.

use std::cell::RefCell;

use cord_nic::SendWqe;
use cord_sim::{SimDuration, SimTime};

use crate::policy::{CordPolicy, PolicyCtx, PolicyDecision};

struct Bucket {
    /// Tokens currently available.
    tokens: f64,
    capacity: f64,
    /// Tokens added per second of virtual time.
    rate_per_s: f64,
    last_refill: SimTime,
}

impl Bucket {
    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_s).min(self.capacity);
        self.last_refill = now;
    }

    /// Try to spend `amount`; on failure return the wait until possible.
    fn spend(&mut self, now: SimTime, amount: f64) -> Option<SimDuration> {
        self.refill(now);
        if self.tokens >= amount {
            self.tokens -= amount;
            None
        } else {
            let deficit = amount - self.tokens;
            let secs = deficit / self.rate_per_s;
            Some(SimDuration::from_ns_f64(secs * 1e9))
        }
    }
}

/// Rate-limits bytes/s and messages/s for every QP it is attached to.
pub struct RateLimitPolicy {
    bytes: RefCell<Bucket>,
    msgs: RefCell<Bucket>,
    cost: SimDuration,
}

impl RateLimitPolicy {
    /// `gbps` payload bandwidth budget, `msgs_per_s` message-rate budget.
    /// Burst capacity is 1 ms worth of budget.
    pub fn new(gbps: f64, msgs_per_s: f64) -> Self {
        let bytes_per_s = gbps * 1e9 / 8.0;
        RateLimitPolicy {
            bytes: RefCell::new(Bucket {
                tokens: bytes_per_s / 1000.0,
                capacity: bytes_per_s / 1000.0,
                rate_per_s: bytes_per_s,
                last_refill: SimTime::ZERO,
            }),
            msgs: RefCell::new(Bucket {
                tokens: msgs_per_s / 1000.0,
                capacity: msgs_per_s / 1000.0,
                rate_per_s: msgs_per_s,
                last_refill: SimTime::ZERO,
            }),
            cost: SimDuration::from_ns(15),
        }
    }
}

impl CordPolicy for RateLimitPolicy {
    fn name(&self) -> &'static str {
        "rate-limit"
    }

    fn on_post_send(&self, ctx: &PolicyCtx, wqe: &SendWqe) -> PolicyDecision {
        let d1 = self.msgs.borrow_mut().spend(ctx.now, 1.0);
        if let Some(d) = d1 {
            return PolicyDecision::Delay(d);
        }
        let d2 = self.bytes.borrow_mut().spend(ctx.now, wqe.sge.len as f64);
        if let Some(d) = d2 {
            return PolicyDecision::Delay(d);
        }
        PolicyDecision::Allow
    }

    fn cost(&self) -> SimDuration {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_nic::{LKey, QpNum, Sge, WrId};

    fn ctx(at_us: u64) -> PolicyCtx {
        PolicyCtx {
            node: 0,
            qpn: QpNum(1),
            now: SimTime(at_us * 1_000_000),
        }
    }

    fn wqe(len: usize) -> SendWqe {
        SendWqe::send(
            WrId(1),
            Sge {
                addr: 0x1_0000,
                len,
                lkey: LKey(1),
            },
        )
    }

    #[test]
    fn within_budget_allows() {
        let p = RateLimitPolicy::new(1.0, 1_000_000.0); // 1 Gbit/s, 1M msg/s
        for _ in 0..10 {
            assert_eq!(p.on_post_send(&ctx(0), &wqe(1000)), PolicyDecision::Allow);
        }
    }

    #[test]
    fn byte_budget_exhaustion_delays() {
        let p = RateLimitPolicy::new(0.008, 1e9); // 1 MB/s => 1000 B burst (1 ms)
        assert_eq!(p.on_post_send(&ctx(0), &wqe(1000)), PolicyDecision::Allow);
        match p.on_post_send(&ctx(0), &wqe(1000)) {
            PolicyDecision::Delay(d) => {
                // Need 1000 B at 1 MB/s = 1 ms.
                assert!((d.as_us_f64() - 1000.0).abs() < 1.0, "{d}");
            }
            other => panic!("expected delay, got {other:?}"),
        }
    }

    #[test]
    fn budget_refills_over_time() {
        let p = RateLimitPolicy::new(0.008, 1e9); // 1 MB/s
        assert_eq!(p.on_post_send(&ctx(0), &wqe(1000)), PolicyDecision::Allow);
        // 2 ms later the bucket has refilled (capped at capacity).
        assert_eq!(
            p.on_post_send(&ctx(2000), &wqe(1000)),
            PolicyDecision::Allow
        );
    }

    #[test]
    fn message_rate_limit_binds_independently() {
        let p = RateLimitPolicy::new(100.0, 2000.0); // 2 k msg/s => 2 msg burst
        assert_eq!(p.on_post_send(&ctx(0), &wqe(1)), PolicyDecision::Allow);
        assert_eq!(p.on_post_send(&ctx(0), &wqe(1)), PolicyDecision::Allow);
        assert!(matches!(
            p.on_post_send(&ctx(0), &wqe(1)),
            PolicyDecision::Delay(_)
        ));
    }
}
