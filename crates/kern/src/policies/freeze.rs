//! Dataplane freeze: the OS pauses a QP's sends without application
//! cooperation — the primitive behind transparent live migration of RDMA
//! applications (the authors' MigrOS line of work, §1 [69]), which kernel
//! bypass makes impossible because the OS never sees the dataplane.

use std::cell::RefCell;
use std::collections::HashSet;

use cord_nic::SendWqe;
use cord_sim::SimDuration;

use crate::policy::{CordPolicy, PolicyCtx, PolicyDecision};

pub struct FreezePolicy {
    frozen: RefCell<HashSet<u32>>,
    /// Re-check interval while frozen.
    poll_interval: SimDuration,
}

impl Default for FreezePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl FreezePolicy {
    pub fn new() -> Self {
        FreezePolicy {
            frozen: RefCell::new(HashSet::new()),
            poll_interval: SimDuration::from_us(5),
        }
    }

    /// Pause all sends on a QP.
    pub fn freeze(&self, qpn: u32) {
        self.frozen.borrow_mut().insert(qpn);
    }

    /// Resume a QP.
    pub fn unfreeze(&self, qpn: u32) {
        self.frozen.borrow_mut().remove(&qpn);
    }

    pub fn is_frozen(&self, qpn: u32) -> bool {
        self.frozen.borrow().contains(&qpn)
    }
}

impl CordPolicy for FreezePolicy {
    fn name(&self) -> &'static str {
        "freeze"
    }

    fn on_post_send(&self, ctx: &PolicyCtx, _wqe: &SendWqe) -> PolicyDecision {
        if self.is_frozen(ctx.qpn.0) {
            PolicyDecision::Delay(self.poll_interval)
        } else {
            PolicyDecision::Allow
        }
    }

    fn cost(&self) -> SimDuration {
        SimDuration::from_ns(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_nic::{LKey, QpNum, Sge, WrId};
    use cord_sim::SimTime;

    fn ctx(qpn: u32) -> PolicyCtx {
        PolicyCtx {
            node: 0,
            qpn: QpNum(qpn),
            now: SimTime::ZERO,
        }
    }

    fn wqe() -> SendWqe {
        SendWqe::send(
            WrId(1),
            Sge {
                addr: 0x1_0000,
                len: 8,
                lkey: LKey(1),
            },
        )
    }

    #[test]
    fn freeze_delays_unfreeze_allows() {
        let p = FreezePolicy::new();
        assert_eq!(p.on_post_send(&ctx(1), &wqe()), PolicyDecision::Allow);
        p.freeze(1);
        assert!(p.is_frozen(1));
        assert!(matches!(
            p.on_post_send(&ctx(1), &wqe()),
            PolicyDecision::Delay(_)
        ));
        // Other QPs unaffected.
        assert_eq!(p.on_post_send(&ctx(2), &wqe()), PolicyDecision::Allow);
        p.unfreeze(1);
        assert_eq!(p.on_post_send(&ctx(1), &wqe()), PolicyDecision::Allow);
    }
}
