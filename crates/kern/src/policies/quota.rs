//! Outstanding-operation quota (isolation): caps how many un-reaped work
//! requests a QP may have in flight, bounding the NIC resources one tenant
//! can monopolize (the MasQ/FreeFlow-style isolation of §1 [30, 44]).

use std::cell::RefCell;
use std::collections::HashMap;

use cord_nic::{Cqe, SendWqe};
use cord_sim::SimDuration;

use crate::policy::{CordPolicy, PolicyCtx, PolicyDecision};

pub struct QuotaPolicy {
    max_outstanding: usize,
    in_flight: RefCell<HashMap<u32, usize>>,
    cost: SimDuration,
}

impl QuotaPolicy {
    pub fn new(max_outstanding: usize) -> Self {
        assert!(max_outstanding > 0);
        QuotaPolicy {
            max_outstanding,
            in_flight: RefCell::new(HashMap::new()),
            cost: SimDuration::from_ns(12),
        }
    }

    pub fn outstanding(&self, qpn: u32) -> usize {
        self.in_flight.borrow().get(&qpn).copied().unwrap_or(0)
    }
}

impl CordPolicy for QuotaPolicy {
    fn name(&self) -> &'static str {
        "quota"
    }

    fn on_post_send(&self, ctx: &PolicyCtx, _wqe: &SendWqe) -> PolicyDecision {
        let mut map = self.in_flight.borrow_mut();
        let n = map.entry(ctx.qpn.0).or_insert(0);
        if *n >= self.max_outstanding {
            return PolicyDecision::Deny("outstanding-op quota exceeded");
        }
        *n += 1;
        PolicyDecision::Allow
    }

    fn on_completions(&self, ctx: &PolicyCtx, cqes: &[Cqe]) {
        let mut map = self.in_flight.borrow_mut();
        for cqe in cqes {
            // Only send-side completions release quota; the ctx QP owns the CQ.
            if !matches!(
                cqe.opcode,
                cord_nic::CqeOpcode::Recv | cord_nic::CqeOpcode::RecvWithImm
            ) {
                if let Some(n) = map.get_mut(&ctx.qpn.0) {
                    *n = n.saturating_sub(1);
                }
            }
        }
    }

    fn cost(&self) -> SimDuration {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_nic::{CqeOpcode, CqeStatus, LKey, QpNum, Sge, WrId};
    use cord_sim::SimTime;

    fn ctx() -> PolicyCtx {
        PolicyCtx {
            node: 0,
            qpn: QpNum(3),
            now: SimTime::ZERO,
        }
    }

    fn wqe() -> SendWqe {
        SendWqe::send(
            WrId(1),
            Sge {
                addr: 0x1_0000,
                len: 8,
                lkey: LKey(1),
            },
        )
    }

    fn send_cqe() -> Cqe {
        Cqe {
            wr_id: WrId(1),
            status: CqeStatus::Success,
            opcode: CqeOpcode::Send,
            byte_len: 8,
            qp: QpNum(3),
            imm: None,
            src_qp: None,
            src_node: None,
        }
    }

    #[test]
    fn quota_binds_then_releases() {
        let p = QuotaPolicy::new(2);
        assert_eq!(p.on_post_send(&ctx(), &wqe()), PolicyDecision::Allow);
        assert_eq!(p.on_post_send(&ctx(), &wqe()), PolicyDecision::Allow);
        assert!(matches!(
            p.on_post_send(&ctx(), &wqe()),
            PolicyDecision::Deny(_)
        ));
        assert_eq!(p.outstanding(3), 2);
        p.on_completions(&ctx(), &[send_cqe()]);
        assert_eq!(p.outstanding(3), 1);
        assert_eq!(p.on_post_send(&ctx(), &wqe()), PolicyDecision::Allow);
    }

    #[test]
    fn recv_completions_do_not_release_send_quota() {
        let p = QuotaPolicy::new(1);
        assert_eq!(p.on_post_send(&ctx(), &wqe()), PolicyDecision::Allow);
        let mut recv = send_cqe();
        recv.opcode = CqeOpcode::Recv;
        p.on_completions(&ctx(), &[recv]);
        assert_eq!(p.outstanding(3), 1);
    }

    #[test]
    fn quotas_are_per_qp() {
        let p = QuotaPolicy::new(1);
        let mut c2 = ctx();
        c2.qpn = QpNum(9);
        assert_eq!(p.on_post_send(&ctx(), &wqe()), PolicyDecision::Allow);
        assert_eq!(p.on_post_send(&c2, &wqe()), PolicyDecision::Allow);
    }
}
