//! Security filtering of RDMA operations — the OS-level enforcement the
//! paper motivates with ReDMArk/sRDMA-class attacks (§1 [55, 72, 76, 80]):
//! with kernel bypass the OS cannot see (let alone veto) a single RDMA op;
//! under CoRD every op is checked here.

use std::cell::RefCell;
use std::collections::HashSet;

use cord_nic::{Opcode, SendWqe};
use cord_sim::SimDuration;

use crate::policy::{CordPolicy, PolicyCtx, PolicyDecision};

/// Deny rules for a tenant's QPs.
#[derive(Default)]
pub struct SecurityPolicy {
    /// Opcodes that are forbidden (e.g. deny all one-sided reads).
    deny_ops: RefCell<HashSet<DenyOp>>,
    /// Maximum message size; 0 = unlimited.
    max_msg: RefCell<usize>,
    /// Remote address windows allowed for one-sided ops (empty = any).
    allowed_windows: RefCell<Vec<(u64, u64)>>,
    cost: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DenyOp {
    Send,
    Write,
    Read,
}

fn deny_key(op: Opcode) -> DenyOp {
    match op {
        Opcode::Send => DenyOp::Send,
        Opcode::RdmaWrite => DenyOp::Write,
        Opcode::RdmaRead => DenyOp::Read,
    }
}

impl SecurityPolicy {
    pub fn new() -> Self {
        SecurityPolicy {
            cost: SimDuration::from_ns(20),
            ..Default::default()
        }
    }

    /// Forbid an opcode.
    pub fn deny_op(self, op: Opcode) -> Self {
        self.deny_ops.borrow_mut().insert(deny_key(op));
        self
    }

    /// Cap message sizes.
    pub fn max_message(self, bytes: usize) -> Self {
        *self.max_msg.borrow_mut() = bytes;
        self
    }

    /// Restrict one-sided ops to remote windows `[base, base+len)`.
    pub fn allow_remote_window(self, base: u64, len: u64) -> Self {
        self.allowed_windows.borrow_mut().push((base, base + len));
        self
    }
}

impl CordPolicy for SecurityPolicy {
    fn name(&self) -> &'static str {
        "security"
    }

    fn on_post_send(&self, _ctx: &PolicyCtx, wqe: &SendWqe) -> PolicyDecision {
        if self.deny_ops.borrow().contains(&deny_key(wqe.opcode)) {
            return PolicyDecision::Deny("opcode forbidden");
        }
        let cap = *self.max_msg.borrow();
        if cap != 0 && wqe.sge.len > cap {
            return PolicyDecision::Deny("message too large");
        }
        if let Some((raddr, _)) = wqe.remote {
            let windows = self.allowed_windows.borrow();
            if !windows.is_empty() {
                let end = raddr + wqe.sge.len as u64;
                let ok = windows.iter().any(|&(lo, hi)| raddr >= lo && end <= hi);
                if !ok {
                    return PolicyDecision::Deny("remote address outside allowed window");
                }
            }
        }
        PolicyDecision::Allow
    }

    fn cost(&self) -> SimDuration {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_nic::{LKey, QpNum, RKey, Sge, WrId};
    use cord_sim::SimTime;

    fn ctx() -> PolicyCtx {
        PolicyCtx {
            node: 0,
            qpn: QpNum(1),
            now: SimTime::ZERO,
        }
    }

    fn sge(len: usize) -> Sge {
        Sge {
            addr: 0x1_0000,
            len,
            lkey: LKey(1),
        }
    }

    #[test]
    fn denies_configured_opcode() {
        let p = SecurityPolicy::new().deny_op(Opcode::RdmaRead);
        let read = SendWqe::read(WrId(1), sge(64), 0x2000, RKey(1));
        assert_eq!(
            p.on_post_send(&ctx(), &read),
            PolicyDecision::Deny("opcode forbidden")
        );
        let send = SendWqe::send(WrId(2), sge(64));
        assert_eq!(p.on_post_send(&ctx(), &send), PolicyDecision::Allow);
    }

    #[test]
    fn message_size_cap() {
        let p = SecurityPolicy::new().max_message(4096);
        assert_eq!(
            p.on_post_send(&ctx(), &SendWqe::send(WrId(1), sge(4096))),
            PolicyDecision::Allow
        );
        assert_eq!(
            p.on_post_send(&ctx(), &SendWqe::send(WrId(1), sge(4097))),
            PolicyDecision::Deny("message too large")
        );
    }

    #[test]
    fn remote_window_enforced() {
        let p = SecurityPolicy::new().allow_remote_window(0x10_000, 0x1000);
        let inside = SendWqe::write(WrId(1), sge(256), 0x10_100, RKey(1));
        assert_eq!(p.on_post_send(&ctx(), &inside), PolicyDecision::Allow);
        let straddles = SendWqe::write(WrId(1), sge(0x1000), 0x10_800, RKey(1));
        assert!(matches!(
            p.on_post_send(&ctx(), &straddles),
            PolicyDecision::Deny(_)
        ));
        let outside = SendWqe::write(WrId(1), sge(8), 0x20_000, RKey(1));
        assert!(matches!(
            p.on_post_send(&ctx(), &outside),
            PolicyDecision::Deny(_)
        ));
        // Two-sided sends carry no remote address: unaffected.
        assert_eq!(
            p.on_post_send(&ctx(), &SendWqe::send(WrId(2), sge(64))),
            PolicyDecision::Allow
        );
    }
}
