//! Concrete CoRD policies (§3: "CoRD policies should be powerful enough to
//! implement QoS, security, and isolation similarly to other dataplane
//! interception techniques").

mod freeze;
mod observe;
mod qos;
mod quota;
mod rate_limit;
mod security;

pub use freeze::FreezePolicy;
pub use observe::{ObservePolicy, QpStats};
pub use qos::{QosClass, QosPolicy};
pub use quota::QuotaPolicy;
pub use rate_limit::RateLimitPolicy;
pub use security::SecurityPolicy;
