//! Observability: per-QP traffic accounting, visible to the OS without any
//! application cooperation — the eBPF-style monitoring the paper cites
//! (§1 [3]) that kernel bypass forecloses entirely.

use std::cell::RefCell;
use std::collections::HashMap;

use cord_nic::{Cqe, Opcode, SendWqe};
use cord_sim::SimDuration;

use crate::policy::{CordPolicy, PolicyCtx, PolicyDecision};

/// Per-QP counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QpStats {
    pub posts: u64,
    pub bytes_posted: u64,
    pub sends: u64,
    pub writes: u64,
    pub reads: u64,
    pub completions: u64,
    pub errors: u64,
}

#[derive(Default)]
pub struct ObservePolicy {
    stats: RefCell<HashMap<u32, QpStats>>,
}

impl ObservePolicy {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot a QP's counters.
    pub fn stats(&self, qpn: u32) -> QpStats {
        self.stats.borrow().get(&qpn).copied().unwrap_or_default()
    }

    /// All QPs with activity.
    pub fn all(&self) -> Vec<(u32, QpStats)> {
        let mut v: Vec<_> = self.stats.borrow().iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

impl CordPolicy for ObservePolicy {
    fn name(&self) -> &'static str {
        "observe"
    }

    fn on_post_send(&self, ctx: &PolicyCtx, wqe: &SendWqe) -> PolicyDecision {
        let mut stats = self.stats.borrow_mut();
        let s = stats.entry(ctx.qpn.0).or_default();
        s.posts += 1;
        s.bytes_posted += wqe.sge.len as u64;
        match wqe.opcode {
            Opcode::Send => s.sends += 1,
            Opcode::RdmaWrite => s.writes += 1,
            Opcode::RdmaRead => s.reads += 1,
        }
        PolicyDecision::Allow
    }

    fn on_completions(&self, ctx: &PolicyCtx, cqes: &[Cqe]) {
        let mut stats = self.stats.borrow_mut();
        let s = stats.entry(ctx.qpn.0).or_default();
        for c in cqes {
            s.completions += 1;
            if !c.status.is_ok() {
                s.errors += 1;
            }
        }
    }

    fn cost(&self) -> SimDuration {
        SimDuration::from_ns(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_nic::{CqeOpcode, CqeStatus, LKey, QpNum, RKey, Sge, WrId};
    use cord_sim::SimTime;

    fn ctx(qpn: u32) -> PolicyCtx {
        PolicyCtx {
            node: 0,
            qpn: QpNum(qpn),
            now: SimTime::ZERO,
        }
    }

    fn sge(len: usize) -> Sge {
        Sge {
            addr: 0x1_0000,
            len,
            lkey: LKey(1),
        }
    }

    #[test]
    fn counts_by_opcode_and_bytes() {
        let p = ObservePolicy::new();
        p.on_post_send(&ctx(1), &SendWqe::send(WrId(1), sge(100)));
        p.on_post_send(&ctx(1), &SendWqe::write(WrId(2), sge(200), 0x2000, RKey(1)));
        p.on_post_send(&ctx(1), &SendWqe::read(WrId(3), sge(300), 0x2000, RKey(1)));
        let s = p.stats(1);
        assert_eq!(s.posts, 3);
        assert_eq!(s.bytes_posted, 600);
        assert_eq!((s.sends, s.writes, s.reads), (1, 1, 1));
    }

    #[test]
    fn completions_and_errors_tracked() {
        let p = ObservePolicy::new();
        let ok = Cqe {
            wr_id: WrId(1),
            status: CqeStatus::Success,
            opcode: CqeOpcode::Send,
            byte_len: 8,
            qp: QpNum(1),
            imm: None,
            src_qp: None,
            src_node: None,
        };
        let mut bad = ok;
        bad.status = CqeStatus::RemoteAccessErr;
        p.on_completions(&ctx(1), &[ok, bad]);
        let s = p.stats(1);
        assert_eq!(s.completions, 2);
        assert_eq!(s.errors, 1);
    }

    #[test]
    fn stats_are_per_qp_and_sorted() {
        let p = ObservePolicy::new();
        p.on_post_send(&ctx(7), &SendWqe::send(WrId(1), sge(1)));
        p.on_post_send(&ctx(3), &SendWqe::send(WrId(1), sge(1)));
        let all = p.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 3);
        assert_eq!(all[1].0, 7);
        assert_eq!(p.stats(99), QpStats::default());
    }
}
