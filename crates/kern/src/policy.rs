//! CoRD policy framework.
//!
//! The whole point of routing the data plane through the kernel (§3) is
//! that the OS can interpose *lightweight, non-blocking* policies on every
//! operation: QoS, security, isolation, observability. A [`PolicyChain`]
//! is consulted by the kernel driver on each `post_send`/`post_recv`, and
//! notified of completions on each `poll_cq`.
//!
//! Policies must be non-blocking: they may `Allow`, `Deny`, or impose a
//! bounded `Delay` (e.g. a rate limiter waiting for bucket refill), but
//! they can never park an operation indefinitely.

use std::rc::Rc;

use cord_nic::{Cqe, QpNum, SendWqe};
use cord_sim::{SimDuration, SimTime};

/// Context handed to policy hooks.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCtx {
    pub node: usize,
    pub qpn: QpNum,
    pub now: SimTime,
}

/// Outcome of a policy check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Proceed.
    Allow,
    /// Reject the operation; the verb returns `PolicyDenied`.
    Deny(&'static str),
    /// Stall the operation for the given time, then re-evaluate.
    Delay(SimDuration),
}

/// A kernel-level CoRD policy.
pub trait CordPolicy {
    fn name(&self) -> &'static str;

    /// Interpose a send-side work request.
    fn on_post_send(&self, _ctx: &PolicyCtx, _wqe: &SendWqe) -> PolicyDecision {
        PolicyDecision::Allow
    }

    /// Interpose a receive-side work request.
    fn on_post_recv(&self, _ctx: &PolicyCtx) -> PolicyDecision {
        PolicyDecision::Allow
    }

    /// Observe completions as they are reaped.
    fn on_completions(&self, _ctx: &PolicyCtx, _cqes: &[Cqe]) {}

    /// Fixed nominal kernel cost this policy adds to every interposed op.
    fn cost(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// An ordered chain of policies; evaluated front to back, first Deny wins.
#[derive(Clone, Default)]
pub struct PolicyChain {
    policies: Vec<Rc<dyn CordPolicy>>,
}

impl PolicyChain {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, p: Rc<dyn CordPolicy>) {
        self.policies.push(p);
    }

    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Total fixed cost of the chain.
    pub fn cost(&self) -> SimDuration {
        self.policies.iter().map(|p| p.cost()).sum()
    }

    /// Evaluate send hooks: first non-Allow short-circuits.
    pub fn check_post_send(&self, ctx: &PolicyCtx, wqe: &SendWqe) -> PolicyDecision {
        for p in &self.policies {
            match p.on_post_send(ctx, wqe) {
                PolicyDecision::Allow => continue,
                other => return other,
            }
        }
        PolicyDecision::Allow
    }

    pub fn check_post_recv(&self, ctx: &PolicyCtx) -> PolicyDecision {
        for p in &self.policies {
            match p.on_post_recv(ctx) {
                PolicyDecision::Allow => continue,
                other => return other,
            }
        }
        PolicyDecision::Allow
    }

    pub fn notify_completions(&self, ctx: &PolicyCtx, cqes: &[Cqe]) {
        for p in &self.policies {
            p.on_completions(ctx, cqes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_nic::{LKey, Sge, WrId};
    use std::cell::Cell;

    fn wqe() -> SendWqe {
        SendWqe::send(
            WrId(1),
            Sge {
                addr: 0x1_0000,
                len: 64,
                lkey: LKey(1),
            },
        )
    }

    fn ctx() -> PolicyCtx {
        PolicyCtx {
            node: 0,
            qpn: QpNum(1),
            now: SimTime::ZERO,
        }
    }

    struct Always(PolicyDecision, Cell<u32>);
    impl CordPolicy for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn on_post_send(&self, _: &PolicyCtx, _: &SendWqe) -> PolicyDecision {
            self.1.set(self.1.get() + 1);
            self.0
        }
        fn cost(&self) -> SimDuration {
            SimDuration::from_ns(10)
        }
    }

    #[test]
    fn empty_chain_allows() {
        let c = PolicyChain::new();
        assert_eq!(c.check_post_send(&ctx(), &wqe()), PolicyDecision::Allow);
        assert_eq!(c.cost(), SimDuration::ZERO);
        assert!(c.is_empty());
    }

    #[test]
    fn first_deny_short_circuits() {
        let mut c = PolicyChain::new();
        let a = Rc::new(Always(PolicyDecision::Allow, Cell::new(0)));
        let d = Rc::new(Always(PolicyDecision::Deny("nope"), Cell::new(0)));
        let never = Rc::new(Always(PolicyDecision::Allow, Cell::new(0)));
        c.push(a.clone());
        c.push(d.clone());
        c.push(never.clone());
        assert_eq!(
            c.check_post_send(&ctx(), &wqe()),
            PolicyDecision::Deny("nope")
        );
        assert_eq!(a.1.get(), 1);
        assert_eq!(d.1.get(), 1);
        assert_eq!(never.1.get(), 0, "later policies not evaluated");
    }

    #[test]
    fn chain_cost_sums() {
        let mut c = PolicyChain::new();
        c.push(Rc::new(Always(PolicyDecision::Allow, Cell::new(0))));
        c.push(Rc::new(Always(PolicyDecision::Allow, Cell::new(0))));
        assert_eq!(c.cost(), SimDuration::from_ns(20));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn delay_propagates() {
        let mut c = PolicyChain::new();
        c.push(Rc::new(Always(
            PolicyDecision::Delay(SimDuration::from_us(1)),
            Cell::new(0),
        )));
        assert_eq!(
            c.check_post_send(&ctx(), &wqe()),
            PolicyDecision::Delay(SimDuration::from_us(1))
        );
    }
}
