//! # cord-kern — OS kernel model
//!
//! Three pieces:
//!
//! * [`driver`]: the **CoRD kernel driver** — the paper's contribution.
//!   Data-plane verbs become system calls; the kernel interposes a
//!   [`policy::PolicyChain`] and then drives the same NIC doorbells the
//!   bypass path would. No interrupts, no copies, no asynchrony (§4).
//! * [`policy`] + [`policies`]: the interposition framework and six
//!   concrete policies (rate limiting, security filtering, quotas,
//!   priority QoS, observability, dataplane freeze for migration).
//! * [`ipoib`]: the IP-over-InfiniBand stack — the paper's
//!   functionally-equivalent competitor, with the full kernel network
//!   stack on the data path (Fig. 6's 2× slowdown case).

pub mod driver;
pub mod ipoib;
pub mod policies;
pub mod policy;

pub use driver::Kernel;
pub use ipoib::{IpoibError, IpoibStack, SockAddr, Socket};
pub use policies::{
    FreezePolicy, ObservePolicy, QosClass, QosPolicy, QpStats, QuotaPolicy, RateLimitPolicy,
    SecurityPolicy,
};
pub use policy::{CordPolicy, PolicyChain, PolicyCtx, PolicyDecision};
