//! The CoRD kernel driver — the paper's contribution (§4).
//!
//! Under CoRD, `post_send`, `post_recv`, and `poll_cq` are system calls.
//! The kernel-level driver works directly on the verbs objects the user
//! application created (the paper's ~250-line mlx5 patch); the only
//! mandatory overhead is the user↔kernel crossing plus a few nanoseconds
//! of driver work. Policies — the reason to want CoRD at all — are
//! interposed here and are the *only* other cost on the data path.
//!
//! Note what is absent: no interrupts, no asynchronous invocations, no
//! copies. A data-plane op enters the kernel, is checked, pokes the same
//! NIC doorbell the bypass path would, and returns (§4).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use cord_hw::{Core, MachineSpec};
use cord_nic::{Cq, Cqe, Nic, QpNum, RecvWqe, SendWqe, VerbsError};
use cord_sim::{Sim, SimDuration, Trace, TraceKind};

use crate::policy::{CordPolicy, PolicyChain, PolicyCtx, PolicyDecision};

/// Upper bound on policy Delay→re-evaluate rounds; prevents a buggy policy
/// from wedging a kernel thread forever.
const MAX_POLICY_STALLS: u32 = 100_000;

struct KernelInner {
    sim: Sim,
    node: usize,
    spec: MachineSpec,
    nic: Nic,
    policies: RefCell<PolicyChain>,
    trace: Trace,
    cord_posts: Cell<u64>,
    cord_polls: Cell<u64>,
    denials: Cell<u64>,
}

/// Per-node kernel instance. Cheap to clone.
#[derive(Clone)]
pub struct Kernel {
    inner: Rc<KernelInner>,
}

impl Kernel {
    pub fn new(sim: &Sim, spec: &MachineSpec, nic: Nic, trace: Trace) -> Self {
        Kernel {
            inner: Rc::new(KernelInner {
                sim: sim.clone(),
                node: nic.node(),
                spec: spec.clone(),
                nic,
                policies: RefCell::new(PolicyChain::new()),
                trace,
                cord_posts: Cell::new(0),
                cord_polls: Cell::new(0),
                denials: Cell::new(0),
            }),
        }
    }

    pub fn nic(&self) -> &Nic {
        &self.inner.nic
    }

    pub fn node(&self) -> usize {
        self.inner.node
    }

    /// Install a CoRD policy (appends to the chain).
    pub fn add_policy(&self, p: Rc<dyn CordPolicy>) {
        self.inner.policies.borrow_mut().push(p);
    }

    pub fn policy_count(&self) -> usize {
        self.inner.policies.borrow().len()
    }

    /// (posts, polls, denials) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.inner.cord_posts.get(),
            self.inner.cord_polls.get(),
            self.inner.denials.get(),
        )
    }

    fn driver_cost(&self) -> SimDuration {
        SimDuration::from_ns_f64(self.inner.spec.cpu.cord_driver_ns)
    }

    /// CoRD data-plane `post_send` system call.
    pub async fn cord_post_send(
        &self,
        core: &Core,
        qpn: QpNum,
        wqe: SendWqe,
    ) -> Result<(), VerbsError> {
        // Note: crossing and driver work are NOT fused here even though an
        // empty policy chain would allow it arithmetically — collapsing
        // the two parks moves this task's timer registration earlier,
        // which reorders same-picosecond ties against unrelated events
        // and perturbs large-scale results. poll_cq can fuse (verified
        // bit-identical) because its wake sits alone at its instant.
        core.cord_crossing().await;
        self.inner.cord_posts.set(self.inner.cord_posts.get() + 1);

        let mut stalls = 0u32;
        loop {
            let decision = {
                let ctx = PolicyCtx {
                    node: self.inner.node,
                    qpn,
                    now: self.inner.sim.now(),
                };
                self.inner.policies.borrow().check_post_send(&ctx, &wqe)
            };
            match decision {
                PolicyDecision::Allow => break,
                PolicyDecision::Deny(reason) => {
                    self.inner.denials.set(self.inner.denials.get() + 1);
                    self.inner.trace.emit(
                        self.inner.sim.now(),
                        TraceKind::PolicyDeny {
                            node: self.inner.node as u32,
                            qpn: qpn.0,
                        },
                    );
                    return Err(VerbsError::PolicyDenied(reason));
                }
                PolicyDecision::Delay(d) => {
                    stalls += 1;
                    if stalls > MAX_POLICY_STALLS {
                        return Err(VerbsError::PolicyDenied("policy stall limit"));
                    }
                    // The op waits in the kernel (not burning CPU).
                    self.inner.sim.sleep(d).await;
                }
            }
        }
        let policy_cost = self.inner.policies.borrow().cost();
        if !policy_cost.is_zero() {
            core.kernel_work2(policy_cost, self.driver_cost()).await;
        } else {
            core.kernel_work(self.driver_cost()).await;
        }
        // The CoRD prototype lacks inline-send support (§5).
        self.inner
            .nic
            .post_send(qpn, wqe, self.inner.spec.nic.cord_inline)
    }

    /// CoRD data-plane `post_recv` system call.
    pub async fn cord_post_recv(
        &self,
        core: &Core,
        qpn: QpNum,
        wqe: RecvWqe,
    ) -> Result<(), VerbsError> {
        core.cord_crossing().await;
        self.inner.cord_posts.set(self.inner.cord_posts.get() + 1);
        let decision = {
            let ctx = PolicyCtx {
                node: self.inner.node,
                qpn,
                now: self.inner.sim.now(),
            };
            self.inner.policies.borrow().check_post_recv(&ctx)
        };
        if let PolicyDecision::Deny(reason) = decision {
            self.inner.denials.set(self.inner.denials.get() + 1);
            return Err(VerbsError::PolicyDenied(reason));
        }
        let policy_cost = self.inner.policies.borrow().cost();
        if !policy_cost.is_zero() {
            core.kernel_work2(policy_cost, self.driver_cost()).await;
        } else {
            core.kernel_work(self.driver_cost()).await;
        }
        self.inner.nic.post_recv(qpn, wqe)
    }

    /// CoRD `post_recv` with a linked WQE list: one crossing amortized over
    /// the whole batch (`ibv_post_recv` takes a list natively).
    pub async fn cord_post_recv_batch(
        &self,
        core: &Core,
        qpn: QpNum,
        wqes: Vec<RecvWqe>,
    ) -> Result<(), VerbsError> {
        core.cord_crossing().await;
        self.inner.cord_posts.set(self.inner.cord_posts.get() + 1);
        let decision = {
            let ctx = PolicyCtx {
                node: self.inner.node,
                qpn,
                now: self.inner.sim.now(),
            };
            self.inner.policies.borrow().check_post_recv(&ctx)
        };
        if let PolicyDecision::Deny(reason) = decision {
            self.inner.denials.set(self.inner.denials.get() + 1);
            return Err(VerbsError::PolicyDenied(reason));
        }
        let per_wqe = SimDuration::from_ns_f64(self.inner.spec.cpu.cord_driver_ns * 0.3);
        core.kernel_work(self.driver_cost()).await;
        for wqe in wqes {
            core.kernel_work(per_wqe).await;
            self.inner.nic.post_recv(qpn, wqe)?;
        }
        Ok(())
    }

    /// CoRD data-plane `poll_cq` system call: reaps up to `max` CQEs.
    /// Completion notifications are delivered to the policy chain grouped
    /// by the QP each CQE belongs to.
    pub async fn cord_poll_cq(&self, core: &Core, cq: &Cq, max: usize) -> Vec<Cqe> {
        // Crossing and driver execution have no decision point between
        // them, so they fuse into one park on fusable cores.
        core.cord_crossing_plus(self.driver_cost()).await;
        self.inner.cord_polls.set(self.inner.cord_polls.get() + 1);
        let cqes = cq.poll(max);
        if !cqes.is_empty() {
            let policies = self.inner.policies.borrow();
            let now = self.inner.sim.now();
            let mut i = 0;
            while i < cqes.len() {
                let qpn = cqes[i].qp;
                let mut j = i + 1;
                while j < cqes.len() && cqes[j].qp == qpn {
                    j += 1;
                }
                let ctx = PolicyCtx {
                    node: self.inner.node,
                    qpn,
                    now,
                };
                policies.notify_completions(&ctx, &cqes[i..j]);
                i = j;
            }
        }
        cqes
    }

    /// Control-plane ioctl (QP/CQ/MR creation) — the path vanilla ibverbs
    /// already routes through the kernel (§4); CoRD leaves it unchanged.
    pub async fn control_ioctl(&self, core: &Core) {
        core.ioctl().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{ObservePolicy, SecurityPolicy};
    use cord_hw::{system_l, CoreId, Dvfs, GuestMem, Noise};
    use cord_nic::{build_cluster, Access, Opcode, RKey, Sge, Transport, WrId};

    fn setup(sim: &Sim) -> (Kernel, Core, cord_nic::Cq, cord_nic::Cq, QpNum, GuestMem) {
        let spec = system_l();
        let nics = build_cluster(sim, &spec, Trace::disabled());
        let kern = Kernel::new(sim, &spec, nics[0].clone(), Trace::disabled());
        let dvfs = Dvfs::new(sim, spec.dvfs.clone());
        let core = Core::new(
            sim,
            CoreId { node: 0, core: 0 },
            &spec,
            dvfs,
            Noise::disabled(),
        );
        let scq = nics[0].create_cq(64);
        let rcq = nics[0].create_cq(64);
        let qpn = nics[0].create_qp(Transport::Rc, scq.clone(), rcq.clone());
        // Connect to a peer QP on node 1 so posts are legal.
        let scq2 = nics[1].create_cq(64);
        let rcq2 = nics[1].create_cq(64);
        let qpn2 = nics[1].create_qp(Transport::Rc, scq2, rcq2);
        nics[0].connect(qpn, Some((1, qpn2))).unwrap();
        nics[1].connect(qpn2, Some((0, qpn))).unwrap();
        (kern, core, scq, rcq, qpn, GuestMem::new())
    }

    #[test]
    fn post_send_costs_one_crossing_plus_driver() {
        let sim = Sim::new();
        let (kern, core, _scq, _rcq, qpn, mem) = setup(&sim);
        let spec = system_l();
        let buf = mem.alloc(64, 7);
        let mr = kern.nic().mr_table().register(mem, buf, Access::all());
        let t = sim.block_on({
            let sim2 = sim.clone();
            async move {
                kern.cord_post_send(
                    &core,
                    qpn,
                    SendWqe::send(
                        WrId(1),
                        Sge {
                            addr: buf.addr,
                            len: 64,
                            lkey: mr.lkey,
                        },
                    ),
                )
                .await
                .unwrap();
                sim2.now()
            }
        });
        let expect = spec.cpu.cord_crossing_ns + spec.cpu.cord_driver_ns;
        assert_eq!(t.as_ns_f64(), expect, "no hidden costs without policies");
    }

    #[test]
    fn policy_denial_reaches_caller_and_nic_sees_nothing() {
        let sim = Sim::new();
        let (kern, core, _scq, _rcq, qpn, mem) = setup(&sim);
        kern.add_policy(Rc::new(SecurityPolicy::new().deny_op(Opcode::RdmaRead)));
        let buf = mem.alloc(64, 0);
        let mr = kern.nic().mr_table().register(mem, buf, Access::all());
        let err = sim.block_on({
            let kern = kern.clone();
            async move {
                kern.cord_post_send(
                    &core,
                    qpn,
                    SendWqe::read(
                        WrId(1),
                        Sge {
                            addr: buf.addr,
                            len: 64,
                            lkey: mr.lkey,
                        },
                        0x9000,
                        RKey(1),
                    ),
                )
                .await
            }
        });
        assert_eq!(err, Err(VerbsError::PolicyDenied("opcode forbidden")));
        let (posts, _, denials) = kern.counters();
        assert_eq!(posts, 1);
        assert_eq!(denials, 1);
        // The denied WQE never reached the QP.
        let (tx_msgs, _, _, _) = kern.nic().qp_counters(qpn).unwrap();
        assert_eq!(tx_msgs, 0);
    }

    #[test]
    fn observe_policy_sees_cord_traffic() {
        let sim = Sim::new();
        let (kern, core, scq, _rcq, qpn, mem) = setup(&sim);
        let obs = Rc::new(ObservePolicy::new());
        kern.add_policy(obs.clone());
        let buf = mem.alloc(128, 1);
        let mr = kern.nic().mr_table().register(mem, buf, Access::all());
        sim.block_on({
            let kern = kern.clone();
            async move {
                // An RNR-bound send (no receiver WQE): completes with error.
                kern.cord_post_send(
                    &core,
                    qpn,
                    SendWqe::send(
                        WrId(1),
                        Sge {
                            addr: buf.addr,
                            len: 128,
                            lkey: mr.lkey,
                        },
                    ),
                )
                .await
                .unwrap();
                loop {
                    let cqes = kern.cord_poll_cq(&core, &scq, 16).await;
                    if !cqes.is_empty() {
                        break;
                    }
                    scq.wait_push().await;
                }
            }
        });
        let s = obs.stats(qpn.0);
        assert_eq!(s.posts, 1);
        assert_eq!(s.bytes_posted, 128);
        assert_eq!(s.completions, 1);
        assert_eq!(s.errors, 1, "RNR error visible to the OS");
    }

    #[test]
    fn poll_cost_is_crossing_plus_driver() {
        let sim = Sim::new();
        let (kern, core, scq, _rcq, _qpn, _mem) = setup(&sim);
        let spec = system_l();
        let t = sim.block_on({
            let sim2 = sim.clone();
            async move {
                let cqes = kern.cord_poll_cq(&core, &scq, 16).await;
                assert!(cqes.is_empty());
                sim2.now()
            }
        });
        assert_eq!(
            t.as_ns_f64(),
            spec.cpu.cord_crossing_ns + spec.cpu.cord_driver_ns
        );
    }
}
