//! IPoIB: IP-over-InfiniBand network stack.
//!
//! The paper's functionally-equivalent competitor to CoRD (§5): traffic
//! rides the same IB NIC, but through the whole kernel network stack —
//! sendmsg/recvmsg syscalls, per-packet stack processing and copies on both
//! sides, a 2044-byte datagram MTU, interrupt-driven RX with NAPI batching,
//! and epoll-style blocking wakeups. Fine-grained OS control, at the price
//! the Fig. 6 NPB runs show (up to 2× slowdown).
//!
//! The stack exposes message-oriented sockets (datagram semantics with
//! kernel fragmentation/reassembly; the fabric is lossless, so no
//! retransmission machinery is modelled).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use cord_hw::{Core, GuestMem, MachineSpec, MemRegion};
use cord_nic::{
    Access, Cq, Mr, Nic, QpNum, RecvWqe, SendWqe, Sge, Transport, UdDest, VerbsError, WrId,
};
use cord_sim::sync::{channel, Notify, Receiver, Sender};
use cord_sim::{FifoResource, Sim, SimDuration};

/// IPoIB packet header carried inside each UD payload.
const HDR: usize = 24;
/// TX buffer pool size.
const TX_POOL: usize = 256;

/// (node, socket id) address.
pub type SockAddr = (usize, u32);

/// IPoIB-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpoibError {
    /// No neighbor entry for the destination node.
    NoRoute(usize),
    /// Unknown destination socket (delivered but dropped at the receiver).
    Verbs(VerbsError),
}

impl std::fmt::Display for IpoibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpoibError::NoRoute(n) => write!(f, "no route to node {n}"),
            IpoibError::Verbs(e) => write!(f, "verbs error: {e}"),
        }
    }
}

impl std::error::Error for IpoibError {}

struct SockState {
    queue: RefCell<VecDeque<(SockAddr, Bytes)>>,
    notify: Notify,
}

/// Reassembly key: (src_node, src_sock, msg_id).
type ReasmKey = (usize, u32, u32);

struct Parsed {
    src_node: usize,
    src_sock: u32,
    dst_sock: u32,
    msg_id: u32,
    frag: u16,
    nfrags: u16,
    total_len: u32,
    payload: Bytes,
}

struct IpoibInner {
    sim: Sim,
    spec: MachineSpec,
    nic: Nic,
    node: usize,
    kern_mem: GuestMem,
    mr: Mr,
    udqpn: QpNum,
    send_cq: Cq,
    recv_cq: Cq,
    tx_bufs: Vec<MemRegion>,
    tx_free: RefCell<Vec<usize>>,
    tx_free_notify: Notify,
    rx_bufs: Vec<MemRegion>,
    sockets: RefCell<HashMap<u32, Rc<SockState>>>,
    next_sock: Cell<u32>,
    next_msg: Cell<u32>,
    neighbors: RefCell<HashMap<usize, QpNum>>,
    softirq_tx: Vec<Sender<Parsed>>,
    /// Per-(src_node, src_sock, msg_id) reassembly buffers.
    reasm: RefCell<HashMap<ReasmKey, (Vec<u8>, usize)>>,
    tx_pkts: Cell<u64>,
    rx_pkts: Cell<u64>,
    /// Node-wide TX serialization (qdisc/netdev lock).
    qdisc: FifoResource,
}

/// Per-node IPoIB stack instance.
#[derive(Clone)]
pub struct IpoibStack {
    inner: Rc<IpoibInner>,
}

/// A message-oriented socket bound to this node's stack.
#[derive(Clone)]
pub struct Socket {
    stack: IpoibStack,
    id: u32,
    state: Rc<SockState>,
}

fn encode_header(
    dst_sock: u32,
    src_sock: u32,
    msg_id: u32,
    frag: u16,
    nfrags: u16,
    total: u32,
    flen: u32,
) -> [u8; HDR] {
    let mut h = [0u8; HDR];
    h[0..4].copy_from_slice(&dst_sock.to_le_bytes());
    h[4..8].copy_from_slice(&src_sock.to_le_bytes());
    h[8..12].copy_from_slice(&msg_id.to_le_bytes());
    h[12..14].copy_from_slice(&frag.to_le_bytes());
    h[14..16].copy_from_slice(&nfrags.to_le_bytes());
    h[16..20].copy_from_slice(&total.to_le_bytes());
    h[20..24].copy_from_slice(&flen.to_le_bytes());
    h
}

impl IpoibStack {
    pub fn new(sim: &Sim, spec: &MachineSpec, nic: Nic) -> Self {
        let kern_mem = GuestMem::new();
        let mtu = spec.ipoib.mtu;
        let rx_pool = spec.nic.rq_depth;
        // One arena covering all buffers, registered once.
        let pool = kern_mem.alloc(mtu * (TX_POOL + rx_pool), 0);
        let mr = nic
            .mr_table()
            .register(kern_mem.clone(), pool, Access::all());
        let tx_bufs: Vec<MemRegion> = (0..TX_POOL).map(|i| pool.slice(i * mtu, mtu)).collect();
        let rx_bufs: Vec<MemRegion> = (0..rx_pool)
            .map(|i| pool.slice((TX_POOL + i) * mtu, mtu))
            .collect();

        let send_cq = nic.create_cq(4096);
        let recv_cq = nic.create_cq(4096);
        let udqpn = nic.create_qp(Transport::Ud, send_cq.clone(), recv_cq.clone());
        nic.connect(udqpn, None).expect("fresh QP");

        // Prepost the whole RX pool.
        for (i, buf) in rx_bufs.iter().enumerate() {
            nic.post_recv(
                udqpn,
                RecvWqe::new(
                    WrId(i as u64),
                    Sge {
                        addr: buf.addr,
                        len: mtu,
                        lkey: mr.lkey,
                    },
                ),
            )
            .expect("rq sized to pool");
        }

        let queues = spec.ipoib.rx_queues.max(1);
        let mut softirq_tx = Vec::with_capacity(queues);
        let mut softirq_rx: Vec<Receiver<Parsed>> = Vec::with_capacity(queues);
        for _ in 0..queues {
            let (tx, rx) = channel();
            softirq_tx.push(tx);
            softirq_rx.push(rx);
        }

        let stack = IpoibStack {
            inner: Rc::new(IpoibInner {
                sim: sim.clone(),
                spec: spec.clone(),
                nic: nic.clone(),
                node: nic.node(),
                kern_mem,
                mr,
                udqpn,
                send_cq,
                recv_cq,
                tx_bufs,
                tx_free: RefCell::new((0..TX_POOL).collect()),
                tx_free_notify: Notify::new(),
                rx_bufs,
                sockets: RefCell::new(HashMap::new()),
                next_sock: Cell::new(1),
                next_msg: Cell::new(1),
                neighbors: RefCell::new(HashMap::new()),
                softirq_tx,
                reasm: RefCell::new(HashMap::new()),
                tx_pkts: Cell::new(0),
                rx_pkts: Cell::new(0),
                qdisc: FifoResource::new(sim),
            }),
        };

        // Loopback route: same-node sockets still traverse the NIC (the
        // paper bars shared-memory shortcuts; NIC loopback is how same-host
        // IPoIB traffic flows when the stack binds to the IB interface).
        stack.add_neighbor(stack.inner.node, stack.inner.udqpn);

        // TX completion reaper: returns buffers to the pool.
        {
            let inner = Rc::clone(&stack.inner);
            sim.spawn(async move {
                loop {
                    let cqes = inner.send_cq.poll(64);
                    if cqes.is_empty() {
                        inner.send_cq.wait_push().await;
                        continue;
                    }
                    for cqe in cqes {
                        inner.tx_free.borrow_mut().push(cqe.wr_id.0 as usize);
                        inner.tx_free_notify.notify_one();
                    }
                }
            });
        }

        // RX dispatcher: interrupt + NAPI batch, demux to softirq workers.
        {
            let inner = Rc::clone(&stack.inner);
            sim.spawn(async move {
                rx_dispatch(inner).await;
            });
        }

        // Softirq workers: per-queue serialized stack processing.
        for (q, rx) in softirq_rx.into_iter().enumerate() {
            let inner = Rc::clone(&stack.inner);
            sim.spawn(async move {
                softirq_worker(inner, q, rx).await;
            });
        }

        stack
    }

    pub fn node(&self) -> usize {
        self.inner.node
    }

    /// The UD QP number other nodes address this stack by.
    pub fn udqpn(&self) -> QpNum {
        self.inner.udqpn
    }

    /// Install a neighbor (ARP) entry.
    pub fn add_neighbor(&self, node: usize, qpn: QpNum) {
        self.inner.neighbors.borrow_mut().insert(node, qpn);
    }

    /// Open a new socket.
    pub fn socket(&self) -> Socket {
        let id = self.inner.next_sock.get();
        self.inner.next_sock.set(id + 1);
        let state = Rc::new(SockState {
            queue: RefCell::new(VecDeque::new()),
            notify: Notify::new(),
        });
        self.inner
            .sockets
            .borrow_mut()
            .insert(id, Rc::clone(&state));
        Socket {
            stack: self.clone(),
            id,
            state,
        }
    }

    /// (tx_pkts, rx_pkts) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.inner.tx_pkts.get(), self.inner.rx_pkts.get())
    }

    fn payload_per_pkt(&self) -> usize {
        self.inner.spec.ipoib.mtu - HDR
    }
}

impl Socket {
    pub fn addr(&self) -> SockAddr {
        (self.stack.inner.node, self.id)
    }

    /// Send a message; fragments through the kernel stack.
    pub async fn send_to(&self, core: &Core, dst: SockAddr, data: &[u8]) -> Result<(), IpoibError> {
        let inner = &self.stack.inner;
        let spec = &inner.spec.ipoib;
        core.kernel_work(SimDuration::from_ns_f64(spec.sendmsg_ns))
            .await;
        let dst_qpn = *inner
            .neighbors
            .borrow()
            .get(&dst.0)
            .ok_or(IpoibError::NoRoute(dst.0))?;

        let msg_id = inner.next_msg.get();
        inner.next_msg.set(msg_id.wrapping_add(1));
        let ppp = self.stack.payload_per_pkt();
        let nfrags = data.len().div_ceil(ppp).max(1);
        for frag in 0..nfrags {
            // Buffer-pool backpressure (qdisc queue limit).
            let buf_idx = loop {
                let popped = inner.tx_free.borrow_mut().pop();
                match popped {
                    Some(i) => break i,
                    None => inner.tx_free_notify.notified().await,
                }
            };
            let buf = inner.tx_bufs[buf_idx];
            let off = frag * ppp;
            let flen = (data.len() - off).min(ppp);
            // Kernel copies user data into the pinned skb (no zero-copy).
            core.memcpy(flen + HDR).await;
            // IP + IPoIB stack work on the caller's core.
            core.kernel_work(SimDuration::from_ns_f64(spec.tx_pkt_ns))
                .await;
            // Node-wide qdisc/xmit serialization: the IPoIB device is one
            // queue; concurrent senders contend here (the node's ceiling).
            inner
                .qdisc
                .use_for(SimDuration::from_ns_f64(spec.qdisc_ns))
                .await;
            let hdr = encode_header(
                dst.1,
                self.id,
                msg_id,
                frag as u16,
                nfrags as u16,
                data.len() as u32,
                flen as u32,
            );
            inner.kern_mem.write(buf.addr, &hdr).expect("pool range");
            inner
                .kern_mem
                .write(buf.addr + HDR as u64, &data[off..off + flen])
                .expect("pool range");
            // Post on the kernel UD QP; retry on a momentarily full SQ.
            loop {
                let wqe = SendWqe::send(
                    WrId(buf_idx as u64),
                    Sge {
                        addr: buf.addr,
                        len: HDR + flen,
                        lkey: inner.mr.lkey,
                    },
                )
                .with_ud_dest(UdDest {
                    node: dst.0,
                    qpn: dst_qpn,
                });
                match inner.nic.post_send(inner.udqpn, wqe, false) {
                    Ok(()) => break,
                    Err(VerbsError::QueueFull) => {
                        inner.sim.sleep(SimDuration::from_ns(500)).await;
                    }
                    Err(e) => return Err(IpoibError::Verbs(e)),
                }
            }
            inner.tx_pkts.set(inner.tx_pkts.get() + 1);
        }
        Ok(())
    }

    /// Receive the next message (blocks through an epoll-style wait).
    pub async fn recv(&self, core: &Core) -> (SockAddr, Bytes) {
        let inner = &self.stack.inner;
        let spec = &inner.spec.ipoib;
        core.kernel_work(SimDuration::from_ns_f64(spec.recvmsg_ns))
            .await;
        loop {
            let popped = self.state.queue.borrow_mut().pop_front();
            if let Some((addr, data)) = popped {
                // Copy out to user space.
                core.memcpy(data.len()).await;
                return (addr, data);
            }
            self.state.notify.notified().await;
            // Scheduler wakeup after the blocking wait.
            core.kernel_work(SimDuration::from_ns_f64(inner.spec.cpu.wakeup_ns))
                .await;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<(SockAddr, Bytes)> {
        self.state.queue.borrow_mut().pop_front()
    }
}

async fn rx_dispatch(inner: Rc<IpoibInner>) {
    let mtu = inner.spec.ipoib.mtu;
    let napi = inner.spec.ipoib.napi_batch;
    loop {
        if inner.recv_cq.is_empty() {
            inner.recv_cq.wait_push().await;
            // Interrupt delivery for this NAPI cycle.
            inner
                .sim
                .sleep(SimDuration::from_ns_f64(inner.spec.cpu.interrupt_ns))
                .await;
        }
        let cqes = inner.recv_cq.poll(napi);
        for cqe in cqes {
            inner.rx_pkts.set(inner.rx_pkts.get() + 1);
            let buf = inner.rx_bufs[cqe.wr_id.0 as usize];
            let raw = inner
                .kern_mem
                .read(buf.addr, cqe.byte_len)
                .expect("pool range");
            // Repost the buffer immediately (contents copied out).
            inner
                .nic
                .post_recv(
                    inner.udqpn,
                    RecvWqe::new(
                        cqe.wr_id,
                        Sge {
                            addr: buf.addr,
                            len: mtu,
                            lkey: inner.mr.lkey,
                        },
                    ),
                )
                .expect("repost");
            if raw.len() < HDR {
                continue; // malformed
            }
            let dst_sock = u32::from_le_bytes(raw[0..4].try_into().unwrap());
            let src_sock = u32::from_le_bytes(raw[4..8].try_into().unwrap());
            let msg_id = u32::from_le_bytes(raw[8..12].try_into().unwrap());
            let frag = u16::from_le_bytes(raw[12..14].try_into().unwrap());
            let nfrags = u16::from_le_bytes(raw[14..16].try_into().unwrap());
            let total_len = u32::from_le_bytes(raw[16..20].try_into().unwrap());
            let flen = u32::from_le_bytes(raw[20..24].try_into().unwrap()) as usize;
            if raw.len() < HDR + flen {
                continue;
            }
            // Source node rides in the GRH (the CQE's src_node field).
            let src_node = cqe.src_node.unwrap_or(inner.node);
            let parsed = Parsed {
                src_node,
                src_sock,
                dst_sock,
                msg_id,
                frag,
                nfrags,
                total_len,
                payload: raw.slice(HDR, flen).to_bytes(),
            };
            // RSS: hash the flow onto a softirq queue.
            let q = (src_node * 31 + src_sock as usize) % inner.softirq_tx.len();
            let _ = inner.softirq_tx[q].try_send(parsed);
        }
    }
}

async fn softirq_worker(inner: Rc<IpoibInner>, _q: usize, rx: Receiver<Parsed>) {
    let per_pkt = SimDuration::from_ns_f64(inner.spec.ipoib.rx_pkt_ns);
    loop {
        let Ok(p) = rx.recv().await else { return };
        // Serialized softirq stack work for this queue.
        inner.sim.sleep(per_pkt).await;
        let key = (p.src_node, p.src_sock, p.msg_id);
        let complete = {
            let mut reasm = inner.reasm.borrow_mut();
            let (buf, got) = reasm
                .entry(key)
                .or_insert_with(|| (vec![0u8; p.total_len as usize], 0));
            let ppp = inner.spec.ipoib.mtu - HDR;
            let off = p.frag as usize * ppp;
            if off + p.payload.len() <= buf.len() {
                buf[off..off + p.payload.len()].copy_from_slice(&p.payload);
            }
            *got += 1;
            if *got == p.nfrags as usize {
                let (buf, _) = reasm.remove(&key).unwrap();
                Some(buf)
            } else {
                None
            }
        };
        if let Some(msg) = complete {
            let sock = inner.sockets.borrow().get(&p.dst_sock).cloned();
            if let Some(s) = sock {
                s.queue
                    .borrow_mut()
                    .push_back(((p.src_node, p.src_sock), Bytes::from(msg)));
                s.notify.notify_one();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_hw::{system_l, CoreId, Dvfs, Noise};
    use cord_nic::build_cluster;
    use cord_sim::Trace;

    fn setup(sim: &Sim) -> (IpoibStack, IpoibStack, Core, Core) {
        let spec = system_l();
        let nics = build_cluster(sim, &spec, Trace::disabled());
        let s0 = IpoibStack::new(sim, &spec, nics[0].clone());
        let s1 = IpoibStack::new(sim, &spec, nics[1].clone());
        s0.add_neighbor(1, s1.udqpn());
        s1.add_neighbor(0, s0.udqpn());
        let mk_core = |node: usize| {
            Core::new(
                sim,
                CoreId { node, core: 0 },
                &spec,
                Dvfs::new(sim, spec.dvfs.clone()),
                Noise::disabled(),
            )
        };
        (s0, s1, mk_core(0), mk_core(1))
    }

    fn msg(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 3) as u8).collect()
    }

    #[test]
    fn small_message_roundtrip() {
        let sim = Sim::new();
        let (s0, s1, c0, c1) = setup(&sim);
        let a = s0.socket();
        let b = s1.socket();
        let b_addr = b.addr();
        let data = msg(100);
        let expect = data.clone();
        sim.block_on(async move {
            a.send_to(&c0, b_addr, &data).await.unwrap();
            let (from, got) = b.recv(&c1).await;
            assert_eq!(from.0, 0);
            assert_eq!(&got[..], &expect[..]);
        });
    }

    #[test]
    fn fragmented_message_reassembles() {
        let sim = Sim::new();
        let (s0, s1, c0, c1) = setup(&sim);
        let a = s0.socket();
        let b = s1.socket();
        let b_addr = b.addr();
        let data = msg(100_000); // ~50 fragments at 2020 B payload
        let expect = data.clone();
        sim.block_on(async move {
            a.send_to(&c0, b_addr, &data).await.unwrap();
            let (_, got) = b.recv(&c1).await;
            assert_eq!(got.len(), expect.len());
            assert_eq!(&got[..], &expect[..]);
        });
        let (tx, rx) = s0.counters();
        assert!(tx >= 50, "fragmented into {tx} packets");
        let _ = rx;
    }

    #[test]
    fn ipoib_latency_is_micro_scale_and_slower_than_rdma() {
        let sim = Sim::new();
        let (s0, s1, c0, c1) = setup(&sim);
        let a = s0.socket();
        let b = s1.socket();
        let b_addr = b.addr();
        let t = sim.block_on({
            let sim2 = sim.clone();
            async move {
                a.send_to(&c0, b_addr, &msg(64)).await.unwrap();
                b.recv(&c1).await;
                sim2.now()
            }
        });
        let us = t.as_us_f64();
        // One-way small message through the kernel stack: several µs —
        // roughly an order of magnitude above the RDMA path.
        assert!((3.0..30.0).contains(&us), "IPoIB one-way {us} µs");
    }

    #[test]
    fn messages_to_distinct_sockets_demux() {
        let sim = Sim::new();
        let (s0, s1, c0, c1) = setup(&sim);
        let a = s0.socket();
        let b1 = s1.socket();
        let b2 = s1.socket();
        let (addr1, addr2) = (b1.addr(), b2.addr());
        sim.block_on(async move {
            a.send_to(&c0, addr1, b"one").await.unwrap();
            a.send_to(&c0, addr2, b"two").await.unwrap();
            let (_, m1) = b1.recv(&c1).await;
            let (_, m2) = b2.recv(&c1).await;
            assert_eq!(&m1[..], b"one");
            assert_eq!(&m2[..], b"two");
        });
    }

    #[test]
    fn no_route_errors() {
        let sim = Sim::new();
        let (s0, _s1, c0, _c1) = setup(&sim);
        let a = s0.socket();
        let r = sim.block_on(async move { a.send_to(&c0, (7, 1), b"x").await });
        assert_eq!(r, Err(IpoibError::NoRoute(7)));
    }

    #[test]
    fn bidirectional_concurrent_traffic() {
        let sim = Sim::new();
        let (s0, s1, c0, c1) = setup(&sim);
        let a = s0.socket();
        let b = s1.socket();
        let (aa, ba) = (a.addr(), b.addr());
        sim.block_on({
            let sim2 = sim.clone();
            async move {
                let t1 = sim2.spawn({
                    let a = a.clone();
                    async move {
                        a.send_to(&c0, ba, &msg(50_000)).await.unwrap();
                        let (_, m) = a.recv(&c0).await;
                        m.len()
                    }
                });
                let t2 = sim2.spawn({
                    let b = b.clone();
                    async move {
                        let (_, m) = b.recv(&c1).await;
                        b.send_to(&c1, aa, &msg(30_000)).await.unwrap();
                        m.len()
                    }
                });
                assert_eq!(t1.await, 30_000);
                assert_eq!(t2.await, 50_000);
            }
        });
    }
}
