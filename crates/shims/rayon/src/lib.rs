//! Minimal vendored stand-in for `rayon` (offline build).
//!
//! `par_iter()`/`into_par_iter()` return ordinary sequential iterators, so
//! the benchmark binaries compile unchanged and — as a bonus — run fully
//! deterministically. The simulator itself is single-threaded (`Rc`-based),
//! so the only cost is wall-clock time in the figure harnesses.

pub mod prelude {
    /// `.par_iter()` on slices, arrays, and `Vec` — sequential here.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.into_par_iter()` — sequential here.
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_is_sequential_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let arr = [1u8, 2];
        assert_eq!(arr.par_iter().count(), 2);
        assert_eq!((0..4).into_par_iter().sum::<usize>(), 6);
    }
}
