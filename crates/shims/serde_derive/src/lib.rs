//! Minimal `#[derive(Serialize)]` for the vendored serde shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Supports
//! the two shapes the workspace uses: structs with named fields and enums
//! with unit variants. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (kind, name, body) = parse_item(input);
    let code = match kind.as_str() {
        "struct" => derive_struct(&name, body),
        "enum" => derive_enum(&name, body),
        _ => panic!("derive(Serialize): unsupported item kind {kind}"),
    };
    code.parse()
        .expect("derive(Serialize): generated code parses")
}

/// Find `struct`/`enum`, the type name, and the `{ ... }` body, skipping
/// attributes and visibility.
fn parse_item(input: TokenStream) -> (String, String, TokenStream) {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next(); // the attribute group
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        other => panic!("derive(Serialize): expected type name, got {other:?}"),
                    };
                    for tt2 in iter.by_ref() {
                        match tt2 {
                            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                                return (kw, name, g.stream());
                            }
                            TokenTree::Punct(p) if p.as_char() == ';' => {
                                panic!("derive(Serialize): tuple/unit structs unsupported");
                            }
                            TokenTree::Punct(p) if p.as_char() == '<' => {
                                panic!("derive(Serialize): generics unsupported");
                            }
                            _ => {}
                        }
                    }
                    panic!("derive(Serialize): missing body for {name}");
                }
                // `pub`, `pub(crate)` etc. fall through.
            }
            _ => {}
        }
    }
    panic!("derive(Serialize): no struct or enum found");
}

/// Extract named field identifiers from a struct body, skipping attributes,
/// visibility, and type tokens (tracking `<`/`>` depth so commas inside
/// generic arguments don't split fields).
fn struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'outer: while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip a following `(crate)`-style restriction, if any.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = iter.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                // Consume `: Type` up to the next top-level comma.
                let mut angle = 0i32;
                for tt2 in iter.by_ref() {
                    if let TokenTree::Punct(p) = tt2 {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 => continue 'outer,
                            _ => {}
                        }
                    }
                }
                break;
            }
            _ => {}
        }
    }
    fields
}

fn derive_struct(name: &str, body: TokenStream) -> String {
    let fields = struct_fields(body);
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))")
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> serde::Value {{\n\
         \t\tserde::Value::Object(vec![{}])\n\
         \t}}\n\
         }}",
        entries.join(", ")
    )
}

/// Extract unit-variant names from an enum body.
fn enum_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter();
    let mut expect_name = true;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) if expect_name => {
                variants.push(id.to_string());
                expect_name = false;
            }
            TokenTree::Group(_) => {
                panic!("derive(Serialize): enum variants with payloads unsupported");
            }
            TokenTree::Punct(p) if p.as_char() == ',' => expect_name = true,
            _ => {}
        }
    }
    variants
}

fn derive_enum(name: &str, body: TokenStream) -> String {
    let variants = enum_variants(body);
    let arms: Vec<String> = variants
        .iter()
        .map(|v| format!("{name}::{v} => serde::Value::Str(::std::string::String::from(\"{v}\"))"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> serde::Value {{\n\
         \t\tmatch self {{ {} }}\n\
         \t}}\n\
         }}",
        arms.join(", ")
    )
}
