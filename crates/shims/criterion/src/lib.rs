//! Minimal vendored stand-in for `criterion` (offline build).
//!
//! Keeps the bench sources compiling and producing useful numbers: each
//! `bench_function` runs its body once for warmup, then times a handful of
//! iterations with `std::time::Instant` and prints mean wall-clock time.
//! No statistics engine, no HTML reports.

use std::time::Instant;

pub use std::hint::black_box;

/// Measured iterations per benchmark (after one warmup run).
const RUNS: u32 = 3;

/// Throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), None, f);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { elapsed_ns: 0.0 };
    f(&mut b); // warmup
    let mut total = 0.0;
    for _ in 0..RUNS {
        b.elapsed_ns = 0.0;
        f(&mut b);
        total += b.elapsed_ns;
    }
    let mean_ns = total / RUNS as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.2} Melem/s)", n as f64 / mean_ns * 1e3),
        Throughput::Bytes(n) => format!(" ({:.2} MB/s)", n as f64 / mean_ns * 1e3),
    });
    println!(
        "bench {name}: {:.3} ms/iter{}",
        mean_ns / 1e6,
        rate.unwrap_or_default()
    );
}

pub struct Bencher {
    elapsed_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns += start.elapsed().as_secs_f64() * 1e9;
    }
}

/// Collects bench functions into a runnable group fn, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
