//! Minimal vendored stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the small slice of the `bytes` API the workspace actually uses:
//! cheaply clonable, immutable, reference-counted byte buffers with
//! zero-copy sub-slicing.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::ManuallyDrop;
use std::ops::{Deref, Range, RangeFrom, RangeFull, RangeTo};
use std::rc::Rc;

/// Recycled payload buffers. Simulators churn through one buffer per
/// packet fragment; reusing the backing `Vec`s removes a malloc/free pair
/// from that path. Only mid-sized buffers are pooled (tiny ones are cheap
/// to allocate, huge ones are not worth pinning).
mod pool {
    use std::cell::RefCell;

    const MIN_CAP: usize = 256;
    const MAX_CAP: usize = 64 << 10;
    const MAX_POOLED: usize = 256;

    thread_local! {
        static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
    }

    pub fn get() -> Vec<u8> {
        POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
    }

    pub fn put(mut v: Vec<u8>) {
        if (MIN_CAP..=MAX_CAP).contains(&v.capacity()) {
            v.clear();
            POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.len() < MAX_POOLED {
                    p.push(v);
                }
            });
        }
    }
}

/// A cheaply clonable, contiguous, immutable chunk of memory.
///
/// Backed by `Rc<Vec<u8>>` rather than `Rc<[u8]>`: converting a `Vec`
/// into `Rc<[u8]>` copies the bytes into a fresh allocation, and payload
/// construction is on the simulator's per-fragment hot path. When the
/// last reference drops, mid-sized backing buffers return to a
/// thread-local pool for reuse.
pub struct Bytes {
    data: ManuallyDrop<Rc<Vec<u8>>>,
    start: usize,
    end: usize,
}

impl Clone for Bytes {
    fn clone(&self) -> Bytes {
        Bytes {
            data: ManuallyDrop::new(Rc::clone(&self.data)),
            start: self.start,
            end: self.end,
        }
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        // Safety: `data` is never touched again after this take.
        let rc = unsafe { ManuallyDrop::take(&mut self.data) };
        if let Some(v) = Rc::into_inner(rc) {
            pool::put(v);
        }
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copy `src` into an owned buffer (recycled when available).
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        let mut v = pool::get();
        v.extend_from_slice(src);
        Bytes::from(v)
    }

    /// Wrap an already-shared buffer without copying, viewing
    /// `data[start..end]`. This is the zero-copy bridge from other
    /// reference-counted byte containers (e.g. guest-memory payload
    /// segments) into `Bytes`.
    pub fn from_shared(data: Rc<Vec<u8>>, start: usize, end: usize) -> Bytes {
        assert!(start <= end && end <= data.len(), "range out of bounds");
        Bytes {
            data: ManuallyDrop::new(data),
            start,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl SliceRange) -> Bytes {
        let (lo, hi) = range.resolve(self.len());
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: ManuallyDrop::new(Rc::clone(&self.data)),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

/// Range forms accepted by [`Bytes::slice`].
pub trait SliceRange {
    fn resolve(self, len: usize) -> (usize, usize);
}

impl SliceRange for Range<usize> {
    fn resolve(self, _len: usize) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SliceRange for RangeFrom<usize> {
    fn resolve(self, len: usize) -> (usize, usize) {
        (self.start, len)
    }
}

impl SliceRange for RangeTo<usize> {
    fn resolve(self, _len: usize) -> (usize, usize) {
        (0, self.end)
    }
}

impl SliceRange for RangeFull {
    fn resolve(self, len: usize) -> (usize, usize) {
        (0, len)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: ManuallyDrop::new(Rc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![7, 7]), Bytes::copy_from_slice(&[7, 7]));
    }
}
