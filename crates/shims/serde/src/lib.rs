//! Minimal vendored stand-in for `serde` (offline build).
//!
//! Instead of serde's visitor machinery, serialization goes through a small
//! JSON-shaped [`Value`] tree: `Serialize::to_value` builds the tree and the
//! vendored `serde_json` shim renders it. This covers exactly what the
//! workspace needs — `#[derive(Serialize)]` on plain structs and unit enums,
//! plus `serde_json::to_string_pretty`.

// `use serde::Serialize` imports both the trait (type namespace) and the
// derive macro (macro namespace), like real serde.
pub use serde_derive::Serialize;

/// JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_values() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1usize, 2.5f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.5)])])
        );
    }
}
