//! Minimal vendored stand-in for `serde_json` (offline build): renders the
//! serde shim's [`Value`] tree as JSON text.

use std::fmt;

pub use serde::Value;

/// Serialization error (the shim is infallible in practice; non-finite
/// floats render as `null` like serde_json's lossy modes).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty JSON with two-space indentation (serde_json style).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats recognizably floats ("1.0", not "1").
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    let n = items.len();
    if n == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("x".into(), Value::Float(1.5))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"x\": 1.5\n}");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.25f64).unwrap(), "2.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
