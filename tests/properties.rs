//! Property-based tests (proptest) over the DESIGN.md invariants.

use cord_core::prelude::*;
use proptest::prelude::*;

/// Run one send of `data` through the given mode pair; return the received
/// bytes and the completion status.
fn roundtrip(data: Vec<u8>, cm: Dataplane, sm: Dataplane, seed: u64) -> (Vec<u8>, CqeStatus) {
    let fabric = Fabric::builder(system_l()).seed(seed).build();
    let a = fabric.new_context(0, cm);
    let b = fabric.new_context(1, sm);
    fabric.block_on(async move {
        let a_scq = a.create_cq(64).await;
        let a_rcq = a.create_cq(64).await;
        let b_scq = b.create_cq(64).await;
        let b_rcq = b.create_cq(64).await;
        let qa = a.create_qp(Transport::Rc, &a_scq, &a_rcq).await;
        let qb = b.create_qp(Transport::Rc, &b_scq, &b_rcq).await;
        connect_rc_pair(&qa, &qb).await.unwrap();
        let len = data.len().max(1);
        let src = a.alloc_from(&data);
        let dst = b.alloc(len, 0);
        let mra = a.reg_mr(src, Access::all()).await;
        let mrb = b.reg_mr(dst, Access::all()).await;
        qb.post_recv(RecvWqe::new(
            WrId(1),
            Sge {
                addr: dst.addr,
                len,
                lkey: mrb.lkey,
            },
        ))
        .await
        .unwrap();
        qa.post_send(SendWqe::send(
            WrId(2),
            Sge {
                addr: src.addr,
                len: data.len(),
                lkey: mra.lkey,
            },
        ))
        .await
        .unwrap();
        let cqe = qb.recv_cq().wait_one().await;
        let got = b.mem().read(dst.addr, data.len()).unwrap().to_vec();
        (got, cqe.status)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Data integrity: arbitrary payloads survive segmentation, DMA, and
    /// reassembly byte-for-byte, whatever the dataplane pairing.
    #[test]
    fn prop_send_delivers_exact_bytes(
        data in proptest::collection::vec(any::<u8>(), 1..20_000),
        cm in prop_oneof![Just(Dataplane::Bypass), Just(Dataplane::Cord)],
        sm in prop_oneof![Just(Dataplane::Bypass), Just(Dataplane::Cord)],
    ) {
        let (got, status) = roundtrip(data.clone(), cm, sm, 1);
        prop_assert_eq!(status, CqeStatus::Success);
        prop_assert_eq!(got, data);
    }

    /// CQE conservation + ordering: N signaled sends on one RC QP produce
    /// exactly N completions, in post order, each successful.
    #[test]
    fn prop_completions_conserved_and_ordered(n in 1usize..40, size in 1usize..4096) {
        let fabric = Fabric::builder(system_l()).build();
        let a = fabric.new_context(0, Dataplane::Cord);
        let b = fabric.new_context(1, Dataplane::Bypass);
        let ok = fabric.block_on(async move {
            let a_scq = a.create_cq(1024).await;
            let a_rcq = a.create_cq(1024).await;
            let b_scq = b.create_cq(1024).await;
            let b_rcq = b.create_cq(1024).await;
            let qa = a.create_qp(Transport::Rc, &a_scq, &a_rcq).await;
            let qb = b.create_qp(Transport::Rc, &b_scq, &b_rcq).await;
            connect_rc_pair(&qa, &qb).await.unwrap();
            let src = a.alloc(size, 9);
            let dst = b.alloc(size * n, 0);
            let mra = a.reg_mr(src, Access::all()).await;
            let mrb = b.reg_mr(dst, Access::all()).await;
            for i in 0..n {
                qb.post_recv(RecvWqe::new(
                    WrId(1000 + i as u64),
                    Sge {
                        addr: dst.addr + (i * size) as u64,
                        len: size,
                        lkey: mrb.lkey,
                    },
                ))
                .await
                .unwrap();
            }
            for i in 0..n {
                qa.post_send(SendWqe::send(
                    WrId(i as u64),
                    Sge {
                        addr: src.addr,
                        len: size,
                        lkey: mra.lkey,
                    },
                ))
                .await
                .unwrap();
            }
            let cqes = qa.send_cq().wait_cqes(n, CompletionWait::BusyPoll).await;
            let ordered = cqes
                .iter()
                .enumerate()
                .all(|(i, c)| c.wr_id == WrId(i as u64) && c.status == CqeStatus::Success);
            // No extras appear afterwards.
            let extra = qa.send_cq().poll(8).await;
            ordered && cqes.len() == n && extra.is_empty()
        });
        prop_assert!(ok);
    }

    /// Determinism: any (size, seed) config yields identical virtual-time
    /// results when repeated.
    #[test]
    fn prop_runs_are_deterministic(size in 1usize..65_536, seed in 0u64..1000) {
        let data = vec![0xA7u8; size];
        let (g1, s1) = roundtrip(data.clone(), Dataplane::Cord, Dataplane::Cord, seed);
        let (g2, s2) = roundtrip(data, Dataplane::Cord, Dataplane::Cord, seed);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(g1, g2);
    }

    /// Policy soundness: with a max-message security policy installed, any
    /// oversized CoRD send is denied and never reaches the NIC; any
    /// conforming send succeeds.
    #[test]
    fn prop_security_policy_is_sound(len in 1usize..16_384, cap in 1usize..16_384) {
        use std::rc::Rc;
        let fabric = Fabric::builder(system_l()).build();
        fabric
            .kernel(0)
            .add_policy(Rc::new(SecurityPolicy::new().max_message(cap)));
        let a = fabric.new_context(0, Dataplane::Cord);
        let b = fabric.new_context(1, Dataplane::Bypass);
        let out = fabric.block_on(async move {
            let a_scq = a.create_cq(64).await;
            let a_rcq = a.create_cq(64).await;
            let b_scq = b.create_cq(64).await;
            let b_rcq = b.create_cq(64).await;
            let qa = a.create_qp(Transport::Rc, &a_scq, &a_rcq).await;
            let qb = b.create_qp(Transport::Rc, &b_scq, &b_rcq).await;
            connect_rc_pair(&qa, &qb).await.unwrap();
            let src = a.alloc(len, 1);
            let mra = a.reg_mr(src, Access::all()).await;
            let dst = b.alloc(len, 0);
            let mrb = b.reg_mr(dst, Access::all()).await;
            qb.post_recv(RecvWqe::new(
                WrId(1),
                Sge {
                    addr: dst.addr,
                    len,
                    lkey: mrb.lkey,
                },
            ))
            .await
            .unwrap();
            let res = qa
                .post_send(SendWqe::send(
                    WrId(2),
                    Sge {
                        addr: src.addr,
                        len,
                        lkey: mra.lkey,
                    },
                ))
                .await;
            let (tx_msgs, _, _, _) = a.nic().qp_counters(qa.qpn()).unwrap();
            (res, tx_msgs)
        });
        if len > cap {
            prop_assert_eq!(out.0, Err(VerbsError::PolicyDenied("message too large")));
            prop_assert_eq!(out.1, 0, "denied op never reached the NIC");
        } else {
            prop_assert!(out.0.is_ok());
        }
    }
}
