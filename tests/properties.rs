//! Randomized property tests over the DESIGN invariants.
//!
//! The crates.io `proptest` engine is unavailable offline, so cases are
//! generated from the workspace's own deterministic RNG streams: every run
//! explores the same inputs, failures are trivially reproducible, and no
//! shrinking machinery is needed because each case prints its inputs.

use cord_core::prelude::*;
use cord_sim::DetRng;

/// Run one send of `data` through the given mode pair; return the received
/// bytes and the completion status.
fn roundtrip(data: Vec<u8>, cm: Dataplane, sm: Dataplane, seed: u64) -> (Vec<u8>, CqeStatus) {
    let fabric = Fabric::builder(system_l()).seed(seed).build();
    let a = fabric.new_context(0, cm);
    let b = fabric.new_context(1, sm);
    fabric.block_on(async move {
        let a_scq = a.create_cq(64).await;
        let a_rcq = a.create_cq(64).await;
        let b_scq = b.create_cq(64).await;
        let b_rcq = b.create_cq(64).await;
        let qa = a.create_qp(Transport::Rc, &a_scq, &a_rcq).await;
        let qb = b.create_qp(Transport::Rc, &b_scq, &b_rcq).await;
        connect_rc_pair(&qa, &qb).await.unwrap();
        let len = data.len().max(1);
        let src = a.alloc_from(&data);
        let dst = b.alloc(len, 0);
        let mra = a.reg_mr(src, Access::all()).await;
        let mrb = b.reg_mr(dst, Access::all()).await;
        qb.post_recv(RecvWqe::new(
            WrId(1),
            Sge {
                addr: dst.addr,
                len,
                lkey: mrb.lkey,
            },
        ))
        .await
        .unwrap();
        qa.post_send(SendWqe::send(
            WrId(2),
            Sge {
                addr: src.addr,
                len: data.len(),
                lkey: mra.lkey,
            },
        ))
        .await
        .unwrap();
        let cqe = qb.recv_cq().wait_one().await;
        let got = b.mem().read(dst.addr, data.len()).unwrap().to_vec();
        (got, cqe.status)
    })
}

fn mode_of(v: u64) -> Dataplane {
    if v.is_multiple_of(2) {
        Dataplane::Bypass
    } else {
        Dataplane::Cord
    }
}

/// Data integrity: arbitrary payloads survive segmentation, DMA, and
/// reassembly byte-for-byte, whatever the dataplane pairing.
#[test]
fn prop_send_delivers_exact_bytes() {
    let rng = DetRng::from_seed(0xDA7A);
    for case in 0..24 {
        let len = rng.uniform_range(1, 20_000) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.uniform_range(0, 256) as u8).collect();
        let cm = mode_of(rng.next_u64());
        let sm = mode_of(rng.next_u64());
        let (got, status) = roundtrip(data.clone(), cm, sm, 1);
        assert_eq!(
            status,
            CqeStatus::Success,
            "case {case}: {len} B {cm}->{sm}"
        );
        assert_eq!(got, data, "case {case}: {len} B {cm}->{sm}");
    }
}

/// CQE conservation + ordering: N signaled sends on one RC QP produce
/// exactly N completions, in post order, each successful.
#[test]
fn prop_completions_conserved_and_ordered() {
    let rng = DetRng::from_seed(0xC0DE);
    for case in 0..24 {
        let n = rng.uniform_range(1, 40) as usize;
        let size = rng.uniform_range(1, 4096) as usize;
        let fabric = Fabric::builder(system_l()).build();
        let a = fabric.new_context(0, Dataplane::Cord);
        let b = fabric.new_context(1, Dataplane::Bypass);
        let ok = fabric.block_on(async move {
            let a_scq = a.create_cq(1024).await;
            let a_rcq = a.create_cq(1024).await;
            let b_scq = b.create_cq(1024).await;
            let b_rcq = b.create_cq(1024).await;
            let qa = a.create_qp(Transport::Rc, &a_scq, &a_rcq).await;
            let qb = b.create_qp(Transport::Rc, &b_scq, &b_rcq).await;
            connect_rc_pair(&qa, &qb).await.unwrap();
            let src = a.alloc(size, 9);
            let dst = b.alloc(size * n, 0);
            let mra = a.reg_mr(src, Access::all()).await;
            let mrb = b.reg_mr(dst, Access::all()).await;
            for i in 0..n {
                qb.post_recv(RecvWqe::new(
                    WrId(1000 + i as u64),
                    Sge {
                        addr: dst.addr + (i * size) as u64,
                        len: size,
                        lkey: mrb.lkey,
                    },
                ))
                .await
                .unwrap();
            }
            for i in 0..n {
                qa.post_send(SendWqe::send(
                    WrId(i as u64),
                    Sge {
                        addr: src.addr,
                        len: size,
                        lkey: mra.lkey,
                    },
                ))
                .await
                .unwrap();
            }
            let cqes = qa.send_cq().wait_cqes(n, CompletionWait::BusyPoll).await;
            let ordered = cqes
                .iter()
                .enumerate()
                .all(|(i, c)| c.wr_id == WrId(i as u64) && c.status == CqeStatus::Success);
            // No extras appear afterwards.
            let extra = qa.send_cq().poll(8).await;
            ordered && cqes.len() == n && extra.is_empty()
        });
        assert!(ok, "case {case}: n={n} size={size}");
    }
}

/// Determinism: any (size, seed) config yields identical virtual-time
/// results when repeated.
#[test]
fn prop_runs_are_deterministic() {
    let rng = DetRng::from_seed(0x5EED);
    for case in 0..12 {
        let size = rng.uniform_range(1, 65_536) as usize;
        let seed = rng.uniform_range(0, 1000);
        let data = vec![0xA7u8; size];
        let (g1, s1) = roundtrip(data.clone(), Dataplane::Cord, Dataplane::Cord, seed);
        let (g2, s2) = roundtrip(data, Dataplane::Cord, Dataplane::Cord, seed);
        assert_eq!(s1, s2, "case {case}: size={size} seed={seed}");
        assert_eq!(g1, g2, "case {case}: size={size} seed={seed}");
    }
}

/// Policy soundness: with a max-message security policy installed, any
/// oversized CoRD send is denied and never reaches the NIC; any
/// conforming send succeeds.
#[test]
fn prop_security_policy_is_sound() {
    use std::rc::Rc;
    let rng = DetRng::from_seed(0x5EC);
    for case in 0..24 {
        let len = rng.uniform_range(1, 16_384) as usize;
        let cap = rng.uniform_range(1, 16_384) as usize;
        let fabric = Fabric::builder(system_l()).build();
        fabric
            .kernel(0)
            .add_policy(Rc::new(SecurityPolicy::new().max_message(cap)));
        let a = fabric.new_context(0, Dataplane::Cord);
        let b = fabric.new_context(1, Dataplane::Bypass);
        let out = fabric.block_on(async move {
            let a_scq = a.create_cq(64).await;
            let a_rcq = a.create_cq(64).await;
            let b_scq = b.create_cq(64).await;
            let b_rcq = b.create_cq(64).await;
            let qa = a.create_qp(Transport::Rc, &a_scq, &a_rcq).await;
            let qb = b.create_qp(Transport::Rc, &b_scq, &b_rcq).await;
            connect_rc_pair(&qa, &qb).await.unwrap();
            let src = a.alloc(len, 1);
            let mra = a.reg_mr(src, Access::all()).await;
            let dst = b.alloc(len, 0);
            let mrb = b.reg_mr(dst, Access::all()).await;
            qb.post_recv(RecvWqe::new(
                WrId(1),
                Sge {
                    addr: dst.addr,
                    len,
                    lkey: mrb.lkey,
                },
            ))
            .await
            .unwrap();
            let res = qa
                .post_send(SendWqe::send(
                    WrId(2),
                    Sge {
                        addr: src.addr,
                        len,
                        lkey: mra.lkey,
                    },
                ))
                .await;
            let (tx_msgs, _, _, _) = a.nic().qp_counters(qa.qpn()).unwrap();
            (res, tx_msgs)
        });
        if len > cap {
            assert_eq!(
                out.0,
                Err(VerbsError::PolicyDenied("message too large")),
                "case {case}: len={len} cap={cap}"
            );
            assert_eq!(out.1, 0, "case {case}: denied op never reached the NIC");
        } else {
            assert!(out.0.is_ok(), "case {case}: len={len} cap={cap}");
        }
    }
}
