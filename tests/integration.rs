//! Cross-crate integration tests: the full stack from the facade down.

use std::rc::Rc;

use cord_core::prelude::*;
use cord_perftest::{run_on, run_test, TestOp, TestSpec};

/// The paper's §4 security claim, end to end through the user API: an
/// invalid remote address errors without touching memory, under both
/// dataplanes.
#[test]
fn invalid_remote_access_is_contained_under_both_dataplanes() {
    for mode in [Dataplane::Bypass, Dataplane::Cord] {
        let fabric = Fabric::builder(system_l()).build();
        let attacker = fabric.new_context(0, mode);
        let victim = fabric.new_context(1, Dataplane::Bypass);
        fabric.block_on(async move {
            let a_scq = attacker.create_cq(64).await;
            let a_rcq = attacker.create_cq(64).await;
            let v_scq = victim.create_cq(64).await;
            let v_rcq = victim.create_cq(64).await;
            let aqp = attacker.create_qp(Transport::Rc, &a_scq, &a_rcq).await;
            let vqp = victim.create_qp(Transport::Rc, &v_scq, &v_rcq).await;
            connect_rc_pair(&aqp, &vqp).await.unwrap();

            // The victim registers a secret WITHOUT remote permissions.
            let secret = victim.alloc_from(b"top secret");
            let secret_mr = victim.reg_mr(secret, Access::LOCAL_WRITE).await;
            let probe = attacker.alloc(64, 0);
            let probe_mr = attacker.reg_mr(probe, Access::all()).await;

            aqp.post_send(SendWqe::read(
                WrId(1),
                Sge {
                    addr: probe.addr,
                    len: 10,
                    lkey: probe_mr.lkey,
                },
                secret.addr,
                secret_mr.rkey,
            ))
            .await
            .unwrap();
            let cqe = aqp.send_cq().wait_one().await;
            assert_eq!(cqe.status, CqeStatus::RemoteAccessErr, "{mode}");
            // Nothing leaked into the probe buffer.
            let leaked = attacker.mem().read(probe.addr, 10).unwrap();
            assert!(leaked.iter().all(|&b| b == 0), "{mode}");
        });
    }
}

/// The headline claim, end to end: a CoRD endpoint is interposable while a
/// bypass endpoint is invisible to the OS — with identical wire behaviour.
#[test]
fn kernel_sees_cord_traffic_but_not_bypass_traffic() {
    for (mode, expect_posts) in [(Dataplane::Bypass, 0u64), (Dataplane::Cord, 50)] {
        let fabric = Fabric::builder(system_l()).build();
        let spec = TestSpec::new(TestOp::WriteBw)
            .size(8192)
            .iters(50)
            .modes(mode, Dataplane::Bypass);
        let m = run_on(&fabric, spec);
        assert!(m.bw_gbps > 0.0);
        let (posts, _polls, denials) = fabric.kernel(0).counters();
        assert_eq!(denials, 0);
        if expect_posts == 0 {
            assert_eq!(posts, 0, "bypass dataplane is invisible to the kernel");
        } else {
            assert!(
                posts >= expect_posts,
                "CoRD ops all pass the kernel: {posts}"
            );
        }
    }
}

/// Observability policy sees exactly the traffic a CoRD tenant generates.
#[test]
fn observe_policy_accounts_traffic_exactly() {
    let fabric = Fabric::builder(system_l()).build();
    let obs = Rc::new(ObservePolicy::new());
    fabric.kernel(0).add_policy(obs.clone());
    let iters = 64;
    let size = 4096;
    run_on(
        &fabric,
        TestSpec::new(TestOp::SendBw)
            .size(size)
            .iters(iters)
            .modes(Dataplane::Cord, Dataplane::Bypass),
    );
    let total: u64 = obs.all().iter().map(|(_, s)| s.bytes_posted).sum();
    assert_eq!(total, (iters * size) as u64);
}

/// QoS policy: a low-priority tenant is stalled while a high-priority one
/// is active; latency reflects it.
#[test]
fn qos_policy_prioritizes() {
    let fabric = Fabric::builder(system_l()).build();
    let qos = Rc::new(QosPolicy::new(
        SimDuration::from_ms(10),
        SimDuration::from_us(5),
    ));
    fabric.kernel(0).add_policy(qos.clone());
    let hi = fabric.new_context(0, Dataplane::Cord);
    let lo = fabric.new_context(0, Dataplane::Cord);
    let peer = fabric.new_context(1, Dataplane::Bypass);
    let qos2 = qos.clone();
    fabric.block_on(async move {
        let mk = |ctx: Context, peer: Context| async move {
            let scq = ctx.create_cq(64).await;
            let rcq = ctx.create_cq(64).await;
            let p_scq = peer.create_cq(64).await;
            let p_rcq = peer.create_cq(64).await;
            let q = ctx.create_qp(Transport::Rc, &scq, &rcq).await;
            let pq = peer.create_qp(Transport::Rc, &p_scq, &p_rcq).await;
            connect_rc_pair(&q, &pq).await.unwrap();
            let buf = ctx.alloc(64, 1);
            let mr = ctx.reg_mr(buf, Access::all()).await;
            let rbuf = peer.alloc(64, 0);
            let rmr = peer.reg_mr(rbuf, Access::all()).await;
            (q, buf, mr, rbuf, rmr)
        };
        let (hq, hbuf, hmr, hr, hrm) = mk(hi.clone(), peer.clone()).await;
        let (lq, lbuf, lmr, lr, lrm) = mk(lo.clone(), peer.clone()).await;
        qos2.classify(hq.qpn().0, QosClass::High);
        qos2.classify(lq.qpn().0, QosClass::Low);

        // High-priority activity...
        hq.post_send(SendWqe::write(
            WrId(1),
            Sge {
                addr: hbuf.addr,
                len: 64,
                lkey: hmr.lkey,
            },
            hr.addr,
            hrm.rkey,
        ))
        .await
        .unwrap();
        // ...makes the low-priority post stall by the penalty.
        let sim = lo.core().sim().clone();
        let t0 = sim.now();
        lq.post_send(SendWqe::write(
            WrId(2),
            Sge {
                addr: lbuf.addr,
                len: 64,
                lkey: lmr.lkey,
            },
            lr.addr,
            lrm.rkey,
        ))
        .await
        .unwrap();
        let stalled = sim.now().since(t0);
        assert!(
            stalled >= SimDuration::from_us(5),
            "low-priority post stalled only {stalled}"
        );
    });
}

/// Dataplane modes interoperate in all four pairings at the raw verb level
/// and produce identical payloads.
#[test]
fn four_mode_matrix_delivers_identical_bytes() {
    let reference: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
    for (cm, sm) in [
        (Dataplane::Bypass, Dataplane::Bypass),
        (Dataplane::Bypass, Dataplane::Cord),
        (Dataplane::Cord, Dataplane::Bypass),
        (Dataplane::Cord, Dataplane::Cord),
    ] {
        let fabric = Fabric::builder(system_a()).build();
        let a = fabric.new_context(0, cm);
        let b = fabric.new_context(1, sm);
        let data = reference.clone();
        let ok = fabric.block_on(async move {
            let a_scq = a.create_cq(64).await;
            let a_rcq = a.create_cq(64).await;
            let b_scq = b.create_cq(64).await;
            let b_rcq = b.create_cq(64).await;
            let qa = a.create_qp(Transport::Rc, &a_scq, &a_rcq).await;
            let qb = b.create_qp(Transport::Rc, &b_scq, &b_rcq).await;
            connect_rc_pair(&qa, &qb).await.unwrap();
            let src = a.alloc_from(&data);
            let dst = b.alloc(data.len(), 0);
            let mra = a.reg_mr(src, Access::all()).await;
            let mrb = b.reg_mr(dst, Access::all()).await;
            qb.post_recv(RecvWqe::new(
                WrId(1),
                Sge {
                    addr: dst.addr,
                    len: data.len(),
                    lkey: mrb.lkey,
                },
            ))
            .await
            .unwrap();
            qa.post_send(SendWqe::send(
                WrId(2),
                Sge {
                    addr: src.addr,
                    len: data.len(),
                    lkey: mra.lkey,
                },
            ))
            .await
            .unwrap();
            qb.recv_cq().wait_one().await;
            b.mem().read(dst.addr, data.len()).unwrap()[..] == data[..]
        });
        assert!(ok, "{cm}->{sm}");
    }
}

/// End-to-end determinism across the whole stack: perftest measurements
/// repeat bit-for-bit with the same seed, and differ with another seed on
/// the noisy machine.
#[test]
fn measurements_are_seed_deterministic() {
    let spec = || {
        TestSpec::new(TestOp::SendLat)
            .size(4096)
            .iters(30)
            .warmup(5)
            .modes(Dataplane::Cord, Dataplane::Cord)
    };
    let a = run_test(system_a(), spec(), 1);
    let b = run_test(system_a(), spec(), 1);
    let c = run_test(system_a(), spec(), 2);
    assert_eq!(a.lat_avg_us, b.lat_avg_us);
    assert_ne!(a.lat_avg_us, c.lat_avg_us, "noise differs across seeds");
}
